//! Binary on-disk format for the entire training data.
//!
//! Layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────┐
//! │ header: magic "BWTD" | version u32 | p u32 | arity u32   │
//! │ region block 0 … region block R-1 (see encode_block)     │
//! │ index: R × (offset u64, len u64, coords arity×u32)       │
//! │ footer: index_offset u64 | region_count u64 | magic      │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers little-endian. The index lives at the end so the writer
//! can stream blocks without knowing their sizes in advance; the reader
//! loads the index once and then reads regions randomly or sequentially.
//!
//! # Versions
//!
//! * **v1** — blocks are the raw encoding of [`encode_block`].
//! * **v2** (current) — every block carries a trailing CRC-32 of its
//!   payload ([`crate::crc32`]), so a rotted or torn block surfaces as a
//!   structured [`CorruptBlock`] error instead of silently decoding
//!   garbage (or worse, plausible-looking wrong numbers). Readers accept
//!   both versions; writers emit v2 unless asked otherwise.
//!
//! # Fault model
//!
//! Every decode path in this module is *total*: truncated, oversized or
//! garbage input returns `io::Error`, never panics, whatever the byte
//! length. The never-panics property is enforced by a test that decodes
//! every truncation of a valid file.

use crate::block::RegionBlock;
use crate::crc32::crc32;
use std::fmt;
use std::io;

/// Minimal checked little-endian cursor over a byte slice (stand-in for
/// the `bytes` crate, which the offline build environment cannot fetch).
/// Unlike `bytes::Buf`, every read is bounds-checked and reads past the
/// end return `io::Error` — decode paths must be total over arbitrary
/// input.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        if self.buf.len() < N {
            return Err(bad("unexpected end of input"));
        }
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        Ok(head.try_into().expect("split_at returned N bytes"))
    }

    fn copy_to_slice(&mut self, out: &mut [u8]) -> io::Result<()> {
        if self.buf.len() < out.len() {
            return Err(bad("unexpected end of input"));
        }
        let (head, tail) = self.buf.split_at(out.len());
        out.copy_from_slice(head);
        self.buf = tail;
        Ok(())
    }

    fn get_u32_le(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn get_u64_le(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn get_i64_le(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take()?))
    }

    fn get_f64_le(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take()?))
    }
}

/// Little-endian append helpers mirroring `bytes::BufMut`.
trait PutLe {
    fn put_slice(&mut self, s: &[u8]);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
}

impl PutLe for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// File magic.
pub const MAGIC: &[u8; 4] = b"BWTD";
/// First format version: raw blocks, no checksums.
pub const VERSION_V1: u32 = 1;
/// Second format version: every block carries a trailing CRC-32.
pub const VERSION_V2: u32 = 2;
/// Current (default-written) format version.
pub const VERSION: u32 = VERSION_V2;
/// Trailing checksum length of a v2 block.
pub const CHECKSUM_LEN: usize = 4;

/// A region block failed its CRC-32 validation: the bytes on disk are
/// not the bytes that were written. Carried as the inner error of an
/// `io::Error` with kind `InvalidData`; use [`is_corrupt`] to classify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptBlock {
    /// Checksum stored in the block trailer.
    pub expected: u32,
    /// Checksum computed over the payload actually read.
    pub actual: u32,
}

impl fmt::Display for CorruptBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt block: stored checksum {:#010x}, computed {:#010x}",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for CorruptBlock {}

impl From<CorruptBlock> for io::Error {
    fn from(c: CorruptBlock) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, c)
    }
}

/// True when `err` wraps a [`CorruptBlock`] — a checksum mismatch, as
/// opposed to truncation or structural garbage. Corruption is permanent
/// (re-reading the same bytes reproduces it), so retry layers must not
/// spend attempts on it.
pub fn is_corrupt(err: &io::Error) -> bool {
    err.get_ref().is_some_and(|e| e.is::<CorruptBlock>())
}

/// Fixed-size file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Format version the file's blocks are encoded with.
    pub version: u32,
    /// Feature arity shared by all blocks.
    pub p: u32,
    /// Number of region coordinates per block.
    pub arity: u32,
}

/// One index entry: where a region block lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the block.
    pub offset: u64,
    /// Encoded length in bytes (including the v2 checksum trailer).
    pub len: u64,
    /// Region coordinates (so the index alone answers "which regions").
    pub coords: Vec<u32>,
}

/// Encode the header.
pub fn encode_header(h: &Header, out: &mut Vec<u8>) {
    out.put_slice(MAGIC);
    out.put_u32_le(h.version);
    out.put_u32_le(h.p);
    out.put_u32_le(h.arity);
}

/// Header byte length.
pub const HEADER_LEN: usize = 4 + 4 + 4 + 4;

/// Decode and validate the header. Accepts every known version.
pub fn decode_header(buf: &[u8]) -> io::Result<Header> {
    if buf.len() < HEADER_LEN {
        return Err(bad("truncated header"));
    }
    let mut buf = Cursor::new(buf);
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = buf.get_u32_le()?;
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(bad("unsupported version"));
    }
    Ok(Header {
        version,
        p: buf.get_u32_le()?,
        arity: buf.get_u32_le()?,
    })
}

/// Encode one region block without a checksum (the v1 block encoding,
/// and the payload part of a v2 block).
pub fn encode_block(block: &RegionBlock, out: &mut Vec<u8>) {
    out.put_u32_le(block.region.len() as u32);
    for &c in &block.region {
        out.put_u32_le(c);
    }
    out.put_u64_le(block.n() as u64);
    out.put_u32_le(block.p);
    for &id in &block.item_ids {
        out.put_i64_le(id);
    }
    for &f in &block.features {
        out.put_f64_le(f);
    }
    for &t in &block.targets {
        out.put_f64_le(t);
    }
}

/// Encode one region block with the v2 trailing CRC-32 over the payload.
pub fn encode_block_v2(block: &RegionBlock, out: &mut Vec<u8>) {
    let start = out.len();
    encode_block(block, out);
    let sum = crc32(&out[start..]);
    out.put_u32_le(sum);
}

/// Encode one region block for `version`.
pub fn encode_block_versioned(block: &RegionBlock, version: u32, out: &mut Vec<u8>) {
    match version {
        VERSION_V1 => encode_block(block, out),
        _ => encode_block_v2(block, out),
    }
}

/// Decode one v1 (checksum-less) region block from its exact byte span.
pub fn decode_block(buf: &[u8]) -> io::Result<RegionBlock> {
    let mut buf = Cursor::new(buf);
    let arity = buf.get_u32_le()? as usize;
    if buf.remaining() < arity.saturating_mul(4).saturating_add(12) {
        return Err(bad("truncated block header"));
    }
    let region = (0..arity)
        .map(|_| buf.get_u32_le())
        .collect::<io::Result<Vec<u32>>>()?;
    let n = buf.get_u64_le()? as usize;
    let p = buf.get_u32_le()?;
    // Guard the size computation itself: a garbage n or p must not
    // overflow usize before the remaining-length check can reject it.
    let need = n
        .checked_mul(16)
        .and_then(|b| n.checked_mul(p as usize).map(|f| (b, f)))
        .and_then(|(b, f)| f.checked_mul(8).and_then(|fb| fb.checked_add(b)));
    match need {
        Some(need) if buf.remaining() >= need => {}
        _ => return Err(bad("truncated block payload")),
    }
    let item_ids = (0..n)
        .map(|_| buf.get_i64_le())
        .collect::<io::Result<Vec<i64>>>()?;
    let features = (0..n * p as usize)
        .map(|_| buf.get_f64_le())
        .collect::<io::Result<Vec<f64>>>()?;
    let targets = (0..n)
        .map(|_| buf.get_f64_le())
        .collect::<io::Result<Vec<f64>>>()?;
    Ok(RegionBlock {
        region,
        item_ids,
        features,
        targets,
        p,
    })
}

/// Decode one v2 region block: validate the trailing CRC-32 *before*
/// touching the payload, then decode. A mismatch returns a
/// [`CorruptBlock`] error (see [`is_corrupt`]).
pub fn decode_block_v2(buf: &[u8]) -> io::Result<RegionBlock> {
    if buf.len() < CHECKSUM_LEN {
        return Err(bad("truncated block checksum"));
    }
    let (payload, trailer) = buf.split_at(buf.len() - CHECKSUM_LEN);
    let expected = u32::from_le_bytes(trailer.try_into().expect("CHECKSUM_LEN bytes"));
    let actual = crc32(payload);
    if actual != expected {
        return Err(CorruptBlock { expected, actual }.into());
    }
    decode_block(payload)
}

/// Decode one region block encoded with `version`.
pub fn decode_block_versioned(buf: &[u8], version: u32) -> io::Result<RegionBlock> {
    match version {
        VERSION_V1 => decode_block(buf),
        VERSION_V2 => decode_block_v2(buf),
        _ => Err(bad("unsupported version")),
    }
}

/// Encoded length of `block` under `version` (v1 = raw payload,
/// v2 = payload + checksum trailer).
pub fn encoded_block_len(block: &RegionBlock, version: u32) -> usize {
    match version {
        VERSION_V1 => block.encoded_len(),
        _ => block.encoded_len() + CHECKSUM_LEN,
    }
}

/// Encode the index + footer.
pub fn encode_index(entries: &[IndexEntry], arity: u32, index_offset: u64, out: &mut Vec<u8>) {
    for e in entries {
        out.put_u64_le(e.offset);
        out.put_u64_le(e.len);
        debug_assert_eq!(e.coords.len() as u32, arity);
        for &c in &e.coords {
            out.put_u32_le(c);
        }
    }
    out.put_u64_le(index_offset);
    out.put_u64_le(entries.len() as u64);
    out.put_slice(MAGIC);
}

/// Footer byte length.
pub const FOOTER_LEN: usize = 8 + 8 + 4;

/// Decode the footer: `(index_offset, region_count)`.
pub fn decode_footer(buf: &[u8]) -> io::Result<(u64, u64)> {
    if buf.len() < FOOTER_LEN {
        return Err(bad("truncated footer"));
    }
    let mut buf = Cursor::new(buf);
    let index_offset = buf.get_u64_le()?;
    let count = buf.get_u64_le()?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad footer magic"));
    }
    Ok((index_offset, count))
}

/// Decode `count` index entries of the given arity.
pub fn decode_index(buf: &[u8], count: u64, arity: u32) -> io::Result<Vec<IndexEntry>> {
    let entry_len = 16usize.checked_add(arity as usize * 4);
    let need = entry_len.and_then(|e| (count as usize).checked_mul(e));
    match need {
        Some(need) if buf.len() >= need => {}
        _ => return Err(bad("truncated index")),
    }
    let mut buf = Cursor::new(buf);
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let offset = buf.get_u64_le()?;
        let len = buf.get_u64_le()?;
        let coords = (0..arity)
            .map(|_| buf.get_u32_le())
            .collect::<io::Result<Vec<u32>>>()?;
        out.push(IndexEntry {
            offset,
            len,
            coords,
        });
    }
    Ok(out)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> RegionBlock {
        let mut b = RegionBlock::new(vec![3, 1], 2);
        b.push(10, &[1.5, -2.0], 7.0);
        b.push(11, &[0.0, 4.0], -1.0);
        b
    }

    #[test]
    fn header_round_trip() {
        for version in [VERSION_V1, VERSION_V2] {
            let h = Header {
                version,
                p: 5,
                arity: 2,
            };
            let mut buf = Vec::new();
            encode_header(&h, &mut buf);
            assert_eq!(buf.len(), HEADER_LEN);
            assert_eq!(decode_header(&buf).unwrap(), h);
        }
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(decode_header(b"nope").is_err());
        let mut buf = Vec::new();
        let h = Header {
            version: VERSION,
            p: 1,
            arity: 1,
        };
        encode_header(&h, &mut buf);
        buf[0] = b'X';
        assert!(decode_header(&buf).is_err());
        // Unknown future version is rejected, not misparsed.
        let mut future = Vec::new();
        encode_header(
            &Header {
                version: 99,
                p: 1,
                arity: 1,
            },
            &mut future,
        );
        assert!(decode_header(&future).is_err());
    }

    #[test]
    fn block_round_trip_v1() {
        let b = block();
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert_eq!(buf.len(), b.encoded_len());
        let back = decode_block(&buf).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn block_round_trip_v2() {
        let b = block();
        let mut buf = Vec::new();
        encode_block_v2(&b, &mut buf);
        assert_eq!(buf.len(), encoded_block_len(&b, VERSION_V2));
        assert_eq!(buf.len(), b.encoded_len() + CHECKSUM_LEN);
        let back = decode_block_v2(&buf).unwrap();
        assert_eq!(back, b);
        // The versioned dispatcher agrees.
        assert_eq!(decode_block_versioned(&buf, VERSION_V2).unwrap(), b);
    }

    #[test]
    fn truncated_block_rejected() {
        let b = block();
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert!(decode_block(&buf[..buf.len() - 1]).is_err());
        assert!(decode_block(&buf[..3]).is_err());
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let b = block();
        for version in [VERSION_V1, VERSION_V2] {
            let mut buf = Vec::new();
            encode_block_versioned(&b, version, &mut buf);
            for len in 0..buf.len() {
                let r = decode_block_versioned(&buf[..len], version);
                assert!(r.is_err(), "version {version} truncation at {len} decoded");
            }
            assert!(decode_block_versioned(&buf, version).is_ok());
        }
        // Headers, footers and indexes are total over truncations too.
        let mut hdr = Vec::new();
        encode_header(
            &Header {
                version: VERSION,
                p: 3,
                arity: 2,
            },
            &mut hdr,
        );
        for len in 0..hdr.len() {
            assert!(decode_header(&hdr[..len]).is_err());
        }
        let entries = vec![IndexEntry {
            offset: 16,
            len: 10,
            coords: vec![1, 2],
        }];
        let mut idx = Vec::new();
        encode_index(&entries, 2, 7, &mut idx);
        for len in 0..idx.len() {
            let _ = decode_footer(&idx[..len]);
            let _ = decode_index(&idx[..len], 1, 2);
        }
    }

    #[test]
    fn garbage_counts_do_not_overflow() {
        // A "block" claiming usize::MAX examples must be rejected by the
        // length check, not crash the size arithmetic.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes()); // arity 0
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n = huge
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // p = huge
        assert!(decode_block(&buf).is_err());
    }

    #[test]
    fn checksum_catches_single_byte_corruption() {
        let b = block();
        let mut buf = Vec::new();
        encode_block_v2(&b, &mut buf);
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x41;
            let err = decode_block_v2(&bad).expect_err("corruption undetected");
            // Payload corruption and trailer corruption alike surface as
            // CorruptBlock (the stored and computed sums disagree either
            // way).
            assert!(is_corrupt(&err), "pos {pos}: {err}");
        }
    }

    #[test]
    fn corrupt_block_classifier_ignores_other_errors() {
        assert!(!is_corrupt(&bad("truncated block")));
        assert!(!is_corrupt(&io::Error::new(
            io::ErrorKind::Interrupted,
            "transient"
        )));
        let err: io::Error = CorruptBlock {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(is_corrupt(&err));
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn index_round_trip() {
        let entries = vec![
            IndexEntry {
                offset: 16,
                len: 100,
                coords: vec![0, 5],
            },
            IndexEntry {
                offset: 116,
                len: 64,
                coords: vec![1, 2],
            },
        ];
        let mut buf = Vec::new();
        encode_index(&entries, 2, 999, &mut buf);
        let footer_start = buf.len() - FOOTER_LEN;
        let (index_offset, count) = decode_footer(&buf[footer_start..]).unwrap();
        assert_eq!((index_offset, count), (999, 2));
        let back = decode_index(&buf[..footer_start], count, 2).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_block_round_trip() {
        let b = RegionBlock::new(vec![7], 3);
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert_eq!(decode_block(&buf).unwrap(), b);
        let mut buf2 = Vec::new();
        encode_block_v2(&b, &mut buf2);
        assert_eq!(decode_block_v2(&buf2).unwrap(), b);
    }
}
