//! Binary on-disk format for the entire training data.
//!
//! Layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────┐
//! │ header: magic "BWTD" | version u32 | p u32 | arity u32   │
//! │ region block 0 … region block R-1 (see encode_block)     │
//! │ index: R × (offset u64, len u64, coords arity×u32)       │
//! │ footer: index_offset u64 | region_count u64 | magic      │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers little-endian. The index lives at the end so the writer
//! can stream blocks without knowing their sizes in advance; the reader
//! loads the index once and then reads regions randomly or sequentially.
//!
//! # Versions
//!
//! * **v1** — blocks are the raw encoding of [`encode_block`].
//! * **v2** (current) — every block carries a trailing CRC-32 of its
//!   payload ([`crate::crc32`]), so a rotted or torn block surfaces as a
//!   structured [`CorruptBlock`] error instead of silently decoding
//!   garbage (or worse, plausible-looking wrong numbers). Readers accept
//!   both versions; writers emit v2 unless asked otherwise.
//!
//! # Fault model
//!
//! Every decode path in this module is *total*: truncated, oversized or
//! garbage input returns `io::Error`, never panics, whatever the byte
//! length. The never-panics property is enforced by a test that decodes
//! every truncation of a valid file.

use crate::block::RegionBlock;
use crate::crc32::{crc32, crc32_finish, crc32_step8, crc32_update, CRC_INIT};
use std::fmt;
use std::io;

/// Minimal checked little-endian cursor over a byte slice (stand-in for
/// the `bytes` crate, which the offline build environment cannot fetch).
/// Unlike `bytes::Buf`, every read is bounds-checked and reads past the
/// end return `io::Error` — decode paths must be total over arbitrary
/// input.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        if self.buf.len() < N {
            return Err(bad("unexpected end of input"));
        }
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        Ok(head.try_into().expect("split_at returned N bytes"))
    }

    /// Borrow the next `len` bytes without copying (section-at-a-time
    /// decoding).
    fn take_span(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < len {
            return Err(bad("unexpected end of input"));
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Everything not yet consumed.
    fn rest(&self) -> &'a [u8] {
        self.buf
    }

    fn copy_to_slice(&mut self, out: &mut [u8]) -> io::Result<()> {
        if self.buf.len() < out.len() {
            return Err(bad("unexpected end of input"));
        }
        let (head, tail) = self.buf.split_at(out.len());
        out.copy_from_slice(head);
        self.buf = tail;
        Ok(())
    }

    fn get_u32_le(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn get_u64_le(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take()?))
    }
}

/// Observer of decoded bytes, in payload order. The v2 path plugs a
/// running CRC in here so the checksum is computed *while* the payload
/// decodes (one touch per block); the v1 path plugs a no-op and the
/// whole mechanism monomorphizes away.
trait CrcSink {
    fn consume(&mut self, bytes: &[u8]);
    fn consume8(&mut self, chunk: &[u8; 8]);
}

struct NoCrc;

impl CrcSink for NoCrc {
    #[inline]
    fn consume(&mut self, _: &[u8]) {}
    #[inline]
    fn consume8(&mut self, _: &[u8; 8]) {}
}

struct WithCrc(u32);

impl CrcSink for WithCrc {
    #[inline]
    fn consume(&mut self, bytes: &[u8]) {
        self.0 = crc32_update(self.0, bytes);
    }
    #[inline]
    fn consume8(&mut self, chunk: &[u8; 8]) {
        self.0 = crc32_step8(self.0, chunk);
    }
}

/// Little-endian append helpers mirroring `bytes::BufMut`.
trait PutLe {
    fn put_slice(&mut self, s: &[u8]);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
}

impl PutLe for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// File magic.
pub const MAGIC: &[u8; 4] = b"BWTD";
/// First format version: raw blocks, no checksums.
pub const VERSION_V1: u32 = 1;
/// Second format version: every block carries a trailing CRC-32.
pub const VERSION_V2: u32 = 2;
/// Current (default-written) format version.
pub const VERSION: u32 = VERSION_V2;
/// Trailing checksum length of a v2 block.
pub const CHECKSUM_LEN: usize = 4;

/// A region block failed its CRC-32 validation: the bytes on disk are
/// not the bytes that were written. Carried as the inner error of an
/// `io::Error` with kind `InvalidData`; use [`is_corrupt`] to classify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptBlock {
    /// Checksum stored in the block trailer.
    pub expected: u32,
    /// Checksum computed over the payload actually read.
    pub actual: u32,
}

impl fmt::Display for CorruptBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt block: stored checksum {:#010x}, computed {:#010x}",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for CorruptBlock {}

impl From<CorruptBlock> for io::Error {
    fn from(c: CorruptBlock) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, c)
    }
}

/// True when `err` wraps a [`CorruptBlock`] — a checksum mismatch, as
/// opposed to truncation or structural garbage. Corruption is permanent
/// (re-reading the same bytes reproduces it), so retry layers must not
/// spend attempts on it.
pub fn is_corrupt(err: &io::Error) -> bool {
    err.get_ref().is_some_and(|e| e.is::<CorruptBlock>())
}

/// Fixed-size file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Format version the file's blocks are encoded with.
    pub version: u32,
    /// Feature arity shared by all blocks.
    pub p: u32,
    /// Number of region coordinates per block.
    pub arity: u32,
}

/// One index entry: where a region block lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the block.
    pub offset: u64,
    /// Encoded length in bytes (including the v2 checksum trailer).
    pub len: u64,
    /// Region coordinates (so the index alone answers "which regions").
    pub coords: Vec<u32>,
}

/// Encode the header.
pub fn encode_header(h: &Header, out: &mut Vec<u8>) {
    out.put_slice(MAGIC);
    out.put_u32_le(h.version);
    out.put_u32_le(h.p);
    out.put_u32_le(h.arity);
}

/// Header byte length.
pub const HEADER_LEN: usize = 4 + 4 + 4 + 4;

/// Decode and validate the header. Accepts every known version.
pub fn decode_header(buf: &[u8]) -> io::Result<Header> {
    if buf.len() < HEADER_LEN {
        return Err(bad("truncated header"));
    }
    let mut buf = Cursor::new(buf);
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = buf.get_u32_le()?;
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(bad("unsupported version"));
    }
    Ok(Header {
        version,
        p: buf.get_u32_le()?,
        arity: buf.get_u32_le()?,
    })
}

/// Encode one region block without a checksum (the v1 block encoding,
/// and the payload part of a v2 block).
pub fn encode_block(block: &RegionBlock, out: &mut Vec<u8>) {
    out.put_u32_le(block.region.len() as u32);
    for &c in &block.region {
        out.put_u32_le(c);
    }
    out.put_u64_le(block.n() as u64);
    out.put_u32_le(block.p);
    for &id in &block.item_ids {
        out.put_i64_le(id);
    }
    // The disk layout is row-major: gather each row across the block's
    // SoA feature lanes (the transpose happens here, not on disk).
    let cols = block.cols();
    for i in 0..block.n() {
        for col in cols {
            out.put_f64_le(col[i]);
        }
    }
    for &t in &block.targets {
        out.put_f64_le(t);
    }
}

/// Encode one region block with the v2 trailing CRC-32 over the payload.
pub fn encode_block_v2(block: &RegionBlock, out: &mut Vec<u8>) {
    let start = out.len();
    encode_block(block, out);
    let sum = crc32(&out[start..]);
    out.put_u32_le(sum);
}

/// Encode one region block for `version`.
pub fn encode_block_versioned(block: &RegionBlock, version: u32, out: &mut Vec<u8>) {
    match version {
        VERSION_V1 => encode_block(block, out),
        _ => encode_block_v2(block, out),
    }
}

/// Structural block parse shared by the v1 and v2 paths. Every byte it
/// consumes is fed to `sink` in payload order, so the v2 caller can
/// fold the CRC into the same pass that decodes values into columns.
fn parse_block<C: CrcSink>(cur: &mut Cursor<'_>, sink: &mut C) -> io::Result<RegionBlock> {
    let arity_bytes = cur.take::<4>()?;
    sink.consume(&arity_bytes);
    let arity = u32::from_le_bytes(arity_bytes) as usize;
    if cur.remaining() < arity.saturating_mul(4).saturating_add(12) {
        return Err(bad("truncated block header"));
    }
    let coord_bytes = cur.take_span(arity * 4)?;
    sink.consume(coord_bytes);
    let region = coord_bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunks")))
        .collect::<Vec<u32>>();
    let n_bytes = cur.take::<8>()?;
    sink.consume(&n_bytes);
    let n = u64::from_le_bytes(n_bytes) as usize;
    let p_bytes = cur.take::<4>()?;
    sink.consume(&p_bytes);
    let p = u32::from_le_bytes(p_bytes);
    // Guard the size computation itself: a garbage n or p must not
    // overflow usize before the remaining-length check can reject it.
    let need = n
        .checked_mul(16)
        .and_then(|b| n.checked_mul(p as usize).map(|f| (b, f)))
        .and_then(|(b, f)| f.checked_mul(8).and_then(|fb| fb.checked_add(b)));
    match need {
        Some(need) if cur.remaining() >= need => {}
        _ => return Err(bad("truncated block payload")),
    }
    let id_bytes = cur.take_span(n * 8)?;
    let mut item_ids = Vec::with_capacity(n);
    for chunk in id_bytes.chunks_exact(8) {
        let c: &[u8; 8] = chunk.try_into().expect("8-byte chunks");
        sink.consume8(c);
        item_ids.push(i64::from_le_bytes(*c));
    }
    // Features decode straight into SoA lanes, one checksum fold per
    // value in the same pass. An empty block gets no lanes at all —
    // `p` is untrusted here and must not size an allocation on its own.
    let feat_bytes = cur.take_span(n * p as usize * 8)?;
    let mut cols: Vec<Vec<f64>> = if n == 0 {
        Vec::new()
    } else {
        (0..p).map(|_| Vec::with_capacity(n)).collect()
    };
    let mut chunks = feat_bytes.chunks_exact(8);
    for _ in 0..n {
        for col in cols.iter_mut() {
            let c: &[u8; 8] = chunks
                .next()
                .expect("span length checked")
                .try_into()
                .expect("8-byte chunks");
            sink.consume8(c);
            col.push(f64::from_le_bytes(*c));
        }
    }
    let target_bytes = cur.take_span(n * 8)?;
    let mut targets = Vec::with_capacity(n);
    for chunk in target_bytes.chunks_exact(8) {
        let c: &[u8; 8] = chunk.try_into().expect("8-byte chunks");
        sink.consume8(c);
        targets.push(f64::from_le_bytes(*c));
    }
    Ok(RegionBlock::from_columns(region, p, item_ids, cols, targets))
}

/// Decode one v1 (checksum-less) region block from its exact byte span.
pub fn decode_block(buf: &[u8]) -> io::Result<RegionBlock> {
    parse_block(&mut Cursor::new(buf), &mut NoCrc)
}

/// Decode one v2 region block, computing the payload CRC-32 *while*
/// decoding (fused: one touch per block) and validating it against the
/// trailer. A mismatch returns a [`CorruptBlock`] error (see
/// [`is_corrupt`]) and takes priority over structural errors — corrupt
/// bytes routinely garble the structure too, and the checksum verdict
/// is the more actionable one.
pub fn decode_block_v2(buf: &[u8]) -> io::Result<RegionBlock> {
    if buf.len() < CHECKSUM_LEN {
        return Err(bad("truncated block checksum"));
    }
    let (payload, trailer) = buf.split_at(buf.len() - CHECKSUM_LEN);
    let expected = u32::from_le_bytes(trailer.try_into().expect("CHECKSUM_LEN bytes"));
    let mut cur = Cursor::new(payload);
    let mut sink = WithCrc(CRC_INIT);
    let parsed = parse_block(&mut cur, &mut sink);
    // Cover whatever the parse did not consume (trailing slack on
    // success, the unparsed tail after a structural error) so `actual`
    // is always the digest of the full payload.
    sink.consume(cur.rest());
    let actual = crc32_finish(sink.0);
    if actual != expected {
        return Err(CorruptBlock { expected, actual }.into());
    }
    parsed
}

/// Decode one region block encoded with `version`.
pub fn decode_block_versioned(buf: &[u8], version: u32) -> io::Result<RegionBlock> {
    match version {
        VERSION_V1 => decode_block(buf),
        VERSION_V2 => decode_block_v2(buf),
        _ => Err(bad("unsupported version")),
    }
}

/// Byte length of a raw (v1 / pre-checksum) block payload. This is the
/// single owner of the block size arithmetic: `RegionBlock::encoded_len`
/// delegates here, so the encoder and the accounting can't drift.
pub fn encoded_payload_len(region_arity: usize, n: usize, p: usize) -> usize {
    // arity u32 + coords + n u64 + p u32, then ids + features + targets
    4 + region_arity * 4 + 8 + 4 + n * 8 + n * p * 8 + n * 8
}

/// Encoded length of `block` under `version` (v1 = raw payload,
/// v2 = payload + checksum trailer).
pub fn encoded_block_len(block: &RegionBlock, version: u32) -> usize {
    match version {
        VERSION_V1 => block.encoded_len(),
        _ => block.encoded_len() + CHECKSUM_LEN,
    }
}

/// Encode the index + footer.
pub fn encode_index(entries: &[IndexEntry], arity: u32, index_offset: u64, out: &mut Vec<u8>) {
    for e in entries {
        out.put_u64_le(e.offset);
        out.put_u64_le(e.len);
        debug_assert_eq!(e.coords.len() as u32, arity);
        for &c in &e.coords {
            out.put_u32_le(c);
        }
    }
    out.put_u64_le(index_offset);
    out.put_u64_le(entries.len() as u64);
    out.put_slice(MAGIC);
}

/// Footer byte length.
pub const FOOTER_LEN: usize = 8 + 8 + 4;

/// Decode the footer: `(index_offset, region_count)`.
pub fn decode_footer(buf: &[u8]) -> io::Result<(u64, u64)> {
    if buf.len() < FOOTER_LEN {
        return Err(bad("truncated footer"));
    }
    let mut buf = Cursor::new(buf);
    let index_offset = buf.get_u64_le()?;
    let count = buf.get_u64_le()?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad footer magic"));
    }
    Ok((index_offset, count))
}

/// Decode `count` index entries of the given arity.
pub fn decode_index(buf: &[u8], count: u64, arity: u32) -> io::Result<Vec<IndexEntry>> {
    let entry_len = 16usize.checked_add(arity as usize * 4);
    let need = entry_len.and_then(|e| (count as usize).checked_mul(e));
    match need {
        Some(need) if buf.len() >= need => {}
        _ => return Err(bad("truncated index")),
    }
    let mut buf = Cursor::new(buf);
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let offset = buf.get_u64_le()?;
        let len = buf.get_u64_le()?;
        let coords = (0..arity)
            .map(|_| buf.get_u32_le())
            .collect::<io::Result<Vec<u32>>>()?;
        out.push(IndexEntry {
            offset,
            len,
            coords,
        });
    }
    Ok(out)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> RegionBlock {
        let mut b = RegionBlock::new(vec![3, 1], 2);
        b.push(10, &[1.5, -2.0], 7.0);
        b.push(11, &[0.0, 4.0], -1.0);
        b
    }

    #[test]
    fn header_round_trip() {
        for version in [VERSION_V1, VERSION_V2] {
            let h = Header {
                version,
                p: 5,
                arity: 2,
            };
            let mut buf = Vec::new();
            encode_header(&h, &mut buf);
            assert_eq!(buf.len(), HEADER_LEN);
            assert_eq!(decode_header(&buf).unwrap(), h);
        }
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(decode_header(b"nope").is_err());
        let mut buf = Vec::new();
        let h = Header {
            version: VERSION,
            p: 1,
            arity: 1,
        };
        encode_header(&h, &mut buf);
        buf[0] = b'X';
        assert!(decode_header(&buf).is_err());
        // Unknown future version is rejected, not misparsed.
        let mut future = Vec::new();
        encode_header(
            &Header {
                version: 99,
                p: 1,
                arity: 1,
            },
            &mut future,
        );
        assert!(decode_header(&future).is_err());
    }

    #[test]
    fn block_round_trip_v1() {
        let b = block();
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert_eq!(buf.len(), b.encoded_len());
        let back = decode_block(&buf).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn block_round_trip_v2() {
        let b = block();
        let mut buf = Vec::new();
        encode_block_v2(&b, &mut buf);
        assert_eq!(buf.len(), encoded_block_len(&b, VERSION_V2));
        assert_eq!(buf.len(), b.encoded_len() + CHECKSUM_LEN);
        let back = decode_block_v2(&buf).unwrap();
        assert_eq!(back, b);
        // The versioned dispatcher agrees.
        assert_eq!(decode_block_versioned(&buf, VERSION_V2).unwrap(), b);
    }

    #[test]
    fn truncated_block_rejected() {
        let b = block();
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert!(decode_block(&buf[..buf.len() - 1]).is_err());
        assert!(decode_block(&buf[..3]).is_err());
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let b = block();
        for version in [VERSION_V1, VERSION_V2] {
            let mut buf = Vec::new();
            encode_block_versioned(&b, version, &mut buf);
            for len in 0..buf.len() {
                let r = decode_block_versioned(&buf[..len], version);
                assert!(r.is_err(), "version {version} truncation at {len} decoded");
            }
            assert!(decode_block_versioned(&buf, version).is_ok());
        }
        // Headers, footers and indexes are total over truncations too.
        let mut hdr = Vec::new();
        encode_header(
            &Header {
                version: VERSION,
                p: 3,
                arity: 2,
            },
            &mut hdr,
        );
        for len in 0..hdr.len() {
            assert!(decode_header(&hdr[..len]).is_err());
        }
        let entries = vec![IndexEntry {
            offset: 16,
            len: 10,
            coords: vec![1, 2],
        }];
        let mut idx = Vec::new();
        encode_index(&entries, 2, 7, &mut idx);
        for len in 0..idx.len() {
            let _ = decode_footer(&idx[..len]);
            let _ = decode_index(&idx[..len], 1, 2);
        }
    }

    #[test]
    fn garbage_counts_do_not_overflow() {
        // A "block" claiming usize::MAX examples must be rejected by the
        // length check, not crash the size arithmetic.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes()); // arity 0
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n = huge
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // p = huge
        assert!(decode_block(&buf).is_err());
    }

    #[test]
    fn checksum_catches_single_byte_corruption() {
        let b = block();
        let mut buf = Vec::new();
        encode_block_v2(&b, &mut buf);
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x41;
            let err = decode_block_v2(&bad).expect_err("corruption undetected");
            // Payload corruption and trailer corruption alike surface as
            // CorruptBlock (the stored and computed sums disagree either
            // way).
            assert!(is_corrupt(&err), "pos {pos}: {err}");
        }
    }

    #[test]
    fn corrupt_block_classifier_ignores_other_errors() {
        assert!(!is_corrupt(&bad("truncated block")));
        assert!(!is_corrupt(&io::Error::new(
            io::ErrorKind::Interrupted,
            "transient"
        )));
        let err: io::Error = CorruptBlock {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(is_corrupt(&err));
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn index_round_trip() {
        let entries = vec![
            IndexEntry {
                offset: 16,
                len: 100,
                coords: vec![0, 5],
            },
            IndexEntry {
                offset: 116,
                len: 64,
                coords: vec![1, 2],
            },
        ];
        let mut buf = Vec::new();
        encode_index(&entries, 2, 999, &mut buf);
        let footer_start = buf.len() - FOOTER_LEN;
        let (index_offset, count) = decode_footer(&buf[footer_start..]).unwrap();
        assert_eq!((index_offset, count), (999, 2));
        let back = decode_index(&buf[..footer_start], count, 2).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_block_round_trip() {
        let b = RegionBlock::new(vec![7], 3);
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert_eq!(decode_block(&buf).unwrap(), b);
        let mut buf2 = Vec::new();
        encode_block_v2(&b, &mut buf2);
        assert_eq!(decode_block_v2(&buf2).unwrap(), b);
    }

    /// `RegionBlock::encoded_len` is derived from
    /// [`encoded_payload_len`]; this pins the derivation to the actual
    /// encoder output for blocks of every arity/size combination.
    #[test]
    fn encoded_len_agrees_with_encoder_for_every_shape() {
        for arity in 0..4usize {
            for p in 0..4u32 {
                for n in 0..5usize {
                    let mut b = RegionBlock::new((0..arity as u32).collect(), p);
                    for i in 0..n {
                        let x: Vec<f64> = (0..p).map(|j| (i * 10 + j as usize) as f64).collect();
                        b.push(i as i64, &x, i as f64);
                    }
                    let mut v1 = Vec::new();
                    encode_block(&b, &mut v1);
                    assert_eq!(v1.len(), b.encoded_len(), "arity {arity} p {p} n {n}");
                    assert_eq!(v1.len(), encoded_block_len(&b, VERSION_V1));
                    assert_eq!(
                        v1.len(),
                        encoded_payload_len(arity, n, p as usize),
                        "arity {arity} p {p} n {n}"
                    );
                    let mut v2 = Vec::new();
                    encode_block_v2(&b, &mut v2);
                    assert_eq!(v2.len(), encoded_block_len(&b, VERSION_V2));
                }
            }
        }
    }

    /// The original row-major (AoS) decoder, kept verbatim as the
    /// oracle for the fused SoA decode paths.
    #[allow(clippy::type_complexity)]
    /// `(region coords, item ids, row-major features, targets, p)` as
    /// decoded by the original row-major (AoS) reader.
    type AosBlock = (Vec<u32>, Vec<i64>, Vec<f64>, Vec<f64>, u32);

    fn decode_block_aos(buf: &[u8]) -> io::Result<AosBlock> {
        let mut cur = Cursor::new(buf);
        let arity = cur.get_u32_le()? as usize;
        if cur.remaining() < arity.saturating_mul(4).saturating_add(12) {
            return Err(bad("truncated block header"));
        }
        let region = (0..arity)
            .map(|_| cur.get_u32_le())
            .collect::<io::Result<Vec<u32>>>()?;
        let n = cur.get_u64_le()? as usize;
        let p = u32::from_le_bytes(cur.take()?);
        let need = n
            .checked_mul(16)
            .and_then(|b| n.checked_mul(p as usize).map(|f| (b, f)))
            .and_then(|(b, f)| f.checked_mul(8).and_then(|fb| fb.checked_add(b)));
        match need {
            Some(need) if cur.remaining() >= need => {}
            _ => return Err(bad("truncated block payload")),
        }
        let item_ids = (0..n)
            .map(|_| cur.take().map(i64::from_le_bytes))
            .collect::<io::Result<Vec<i64>>>()?;
        let features = (0..n * p as usize)
            .map(|_| cur.take().map(f64::from_le_bytes))
            .collect::<io::Result<Vec<f64>>>()?;
        let targets = (0..n)
            .map(|_| cur.take().map(f64::from_le_bytes))
            .collect::<io::Result<Vec<f64>>>()?;
        Ok((region, item_ids, features, targets, p))
    }

    fn decode_block_aos_v2(buf: &[u8]) -> io::Result<AosBlock> {
        if buf.len() < CHECKSUM_LEN {
            return Err(bad("truncated block checksum"));
        }
        let (payload, trailer) = buf.split_at(buf.len() - CHECKSUM_LEN);
        let expected = u32::from_le_bytes(trailer.try_into().unwrap());
        let actual = crc32(payload);
        if actual != expected {
            return Err(CorruptBlock { expected, actual }.into());
        }
        decode_block_aos(payload)
    }

    #[test]
    fn soa_decode_matches_aos_reference() {
        use bellwether_prop::{check, Rng};
        check("format/soa_decode_vs_aos", 300, |rng: &mut Rng| {
            let arity = rng.usize_in(0, 3);
            let p = rng.usize_in(0, 5);
            let n = rng.usize_in(0, 30);
            let mut b = RegionBlock::new(
                (0..arity).map(|_| rng.u32_in(0, 100)).collect(),
                p as u32,
            );
            for _ in 0..n {
                let x: Vec<f64> = (0..p).map(|_| rng.f64_in(-100.0, 100.0)).collect();
                b.push(rng.i64_in(-1000, 1000), &x, rng.f64_in(-10.0, 10.0));
            }
            for version in [VERSION_V1, VERSION_V2] {
                let mut buf = Vec::new();
                encode_block_versioned(&b, version, &mut buf);
                // Clean decode agrees field-for-field with the AoS oracle.
                let soa = decode_block_versioned(&buf, version).unwrap();
                let aos = match version {
                    VERSION_V1 => decode_block_aos(&buf).unwrap(),
                    _ => decode_block_aos_v2(&buf).unwrap(),
                };
                assert_eq!(soa.region, aos.0);
                assert_eq!(soa.item_ids, aos.1);
                assert_eq!(soa.targets, aos.3);
                assert_eq!(soa.p, aos.4);
                for i in 0..n {
                    assert_eq!(soa.row(i), &aos.2[i * p..(i + 1) * p], "row {i}");
                }
                assert_eq!(soa, b);
                // Every truncation errors on both decoders.
                if !buf.is_empty() {
                    let cut = rng.usize_in(0, buf.len() - 1);
                    let soa_err = decode_block_versioned(&buf[..cut], version);
                    let aos_err = match version {
                        VERSION_V1 => decode_block_aos(&buf[..cut]).map(|_| ()),
                        _ => decode_block_aos_v2(&buf[..cut]).map(|_| ()),
                    };
                    assert!(soa_err.is_err(), "truncation at {cut} decoded");
                    assert!(aos_err.is_err(), "oracle accepted truncation at {cut}");
                }
                // Single-byte corruption classifies identically (v2
                // flags CorruptBlock; v1 may decode garbled values —
                // then both decoders must garble identically).
                if !buf.is_empty() {
                    let pos = rng.usize_in(0, buf.len() - 1);
                    let mut bad_buf = buf.clone();
                    bad_buf[pos] ^= 0x41;
                    let soa_res = decode_block_versioned(&bad_buf, version);
                    match version {
                        VERSION_V1 => match (soa_res, decode_block_aos(&bad_buf)) {
                            (Ok(s), Ok(a)) => {
                                assert_eq!(s.item_ids, a.1);
                                assert_eq!(s.targets, a.3);
                            }
                            (Err(_), Err(_)) => {}
                            (s, a) => {
                                panic!("divergent verdicts: soa {s:?} vs aos ok={}", a.is_ok())
                            }
                        },
                        _ => {
                            let err = soa_res.expect_err("corruption undetected");
                            assert!(is_corrupt(&err), "pos {pos}: {err}");
                            let aos_err =
                                decode_block_aos_v2(&bad_buf).expect_err("oracle undetected");
                            assert!(is_corrupt(&aos_err));
                        }
                    }
                }
            }
        });
    }
}
