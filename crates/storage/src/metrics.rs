//! IO accounting shared by all training-data sources.
//!
//! The paper's efficiency claims are stated in *scans over the entire
//! training data* (naive tree ≈ `l·m` scans, RF tree = `l`, single-scan
//! cube = 1). These counters let integration tests assert the claims
//! exactly, independent of wall-clock noise.
//!
//! Since the observability layer landed, [`IoStats`] and [`CubeStats`]
//! are thin bundles of [`Counter`] handles. Constructed via
//! [`IoStats::in_registry`] the handles are bound to the canonical
//! [`names`] entries of a shared [`Registry`], so the legacy record
//! paths and the workspace-wide metrics see the *same* atomics. Read
//! values through [`MetricsSnapshot`] accessors.

use bellwether_obs::{names, Counter, MetricsSnapshot, Recorder, Registry};
use std::sync::Arc;

/// Shared, thread-safe IO counters.
#[derive(Debug, Default)]
pub struct IoStats {
    regions_read: Counter,
    bytes_read: Counter,
    examples_read: Counter,
    corrupt_blocks: Counter,
}

impl IoStats {
    /// Fresh counters behind an `Arc` for sharing with sources.
    pub fn shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Counters bound to the canonical `storage/*` entries of `reg`:
    /// every read recorded here is visible in `reg.snapshot()` too.
    pub fn in_registry(reg: &Registry) -> Arc<IoStats> {
        Arc::new(IoStats {
            regions_read: reg.counter(names::STORAGE_REGIONS_READ),
            bytes_read: reg.counter(names::STORAGE_BYTES_READ),
            examples_read: reg.counter(names::STORAGE_EXAMPLES_READ),
            corrupt_blocks: reg.counter(names::STORAGE_CORRUPT_BLOCKS),
        })
    }

    /// Record one region read of `bytes` bytes and `examples` examples.
    pub fn record_region_read(&self, bytes: u64, examples: u64) {
        self.regions_read.inc();
        self.bytes_read.add(bytes);
        self.examples_read.add(examples);
    }

    /// Record one region block that failed checksum (or structural)
    /// validation.
    pub fn record_corrupt_block(&self) {
        self.corrupt_blocks.inc();
    }

    /// Point-in-time copy of the counters under their canonical names.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                (names::STORAGE_REGIONS_READ.to_string(), self.regions_read.get()),
                (names::STORAGE_BYTES_READ.to_string(), self.bytes_read.get()),
                (
                    names::STORAGE_EXAMPLES_READ.to_string(),
                    self.examples_read.get(),
                ),
                (
                    names::STORAGE_CORRUPT_BLOCKS.to_string(),
                    self.corrupt_blocks.get(),
                ),
            ],
            gauges: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.regions_read.reset();
        self.bytes_read.reset();
        self.examples_read.reset();
        self.corrupt_blocks.reset();
    }
}

impl From<&IoStats> for MetricsSnapshot {
    fn from(s: &IoStats) -> MetricsSnapshot {
        s.snapshot()
    }
}

impl Recorder for IoStats {
    fn add(&self, name: &str, delta: u64) {
        match name {
            names::STORAGE_REGIONS_READ => self.regions_read.add(delta),
            names::STORAGE_BYTES_READ => self.bytes_read.add(delta),
            names::STORAGE_EXAMPLES_READ => self.examples_read.add(delta),
            names::STORAGE_CORRUPT_BLOCKS => self.corrupt_blocks.add(delta),
            _ => {}
        }
    }

    fn set_gauge(&self, _name: &str, _value: f64) {}

    fn record_span(&self, _path: &str, _nanos: u64) {}
}

/// Shared, thread-safe counters for the CUBE-pass kernel.
///
/// Same pattern as [`IoStats`]: relaxed atomics behind an `Arc`, cheap
/// enough to leave enabled. Workers accumulate locally and publish once
/// per phase, so the counters cost nothing in the per-row hot loop.
/// `CubeStats` also implements [`Recorder`] (counters only — spans are
/// dropped), so the kernel's legacy `Option<&CubeStats>` entry point and
/// the traced one share a single instrumentation path.
#[derive(Debug, Default)]
pub struct CubeStats {
    rows_scanned: Counter,
    base_cells: Counter,
    cell_merges: Counter,
    regions_emitted: Counter,
}

impl CubeStats {
    /// Fresh counters behind an `Arc` for sharing with kernels.
    pub fn shared() -> Arc<CubeStats> {
        Arc::new(CubeStats::default())
    }

    /// Counters bound to the canonical `cube_pass/*` entries of `reg`.
    pub fn in_registry(reg: &Registry) -> Arc<CubeStats> {
        Arc::new(CubeStats {
            rows_scanned: reg.counter(names::CUBE_PASS_ROWS_SCANNED),
            base_cells: reg.counter(names::CUBE_PASS_BASE_CELLS),
            cell_merges: reg.counter(names::CUBE_PASS_CELL_MERGES),
            regions_emitted: reg.counter(names::CUBE_PASS_REGIONS_EMITTED),
        })
    }

    /// Record `n` fact rows scanned in phase 1.
    pub fn record_rows_scanned(&self, n: u64) {
        self.rows_scanned.add(n);
    }

    /// Record `n` distinct base cells after phase-1 merging.
    pub fn record_base_cells(&self, n: u64) {
        self.base_cells.add(n);
    }

    /// Record `n` cell-state merge operations (phase-1 chunk merging
    /// plus phase-2 rollup expansion).
    pub fn record_cell_merges(&self, n: u64) {
        self.cell_merges.add(n);
    }

    /// Record `n` non-empty regions emitted by the rollup.
    pub fn record_regions_emitted(&self, n: u64) {
        self.regions_emitted.add(n);
    }

    /// Point-in-time copy of the counters under their canonical names.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                (
                    names::CUBE_PASS_ROWS_SCANNED.to_string(),
                    self.rows_scanned.get(),
                ),
                (names::CUBE_PASS_BASE_CELLS.to_string(), self.base_cells.get()),
                (
                    names::CUBE_PASS_CELL_MERGES.to_string(),
                    self.cell_merges.get(),
                ),
                (
                    names::CUBE_PASS_REGIONS_EMITTED.to_string(),
                    self.regions_emitted.get(),
                ),
            ],
            gauges: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.rows_scanned.reset();
        self.base_cells.reset();
        self.cell_merges.reset();
        self.regions_emitted.reset();
    }
}

impl From<&CubeStats> for MetricsSnapshot {
    fn from(s: &CubeStats) -> MetricsSnapshot {
        s.snapshot()
    }
}

impl Recorder for CubeStats {
    fn add(&self, name: &str, delta: u64) {
        match name {
            names::CUBE_PASS_ROWS_SCANNED => self.rows_scanned.add(delta),
            names::CUBE_PASS_BASE_CELLS => self.base_cells.add(delta),
            names::CUBE_PASS_CELL_MERGES => self.cell_merges.add(delta),
            names::CUBE_PASS_REGIONS_EMITTED => self.regions_emitted.add(delta),
            _ => {}
        }
    }

    fn set_gauge(&self, _name: &str, _value: f64) {}

    fn record_span(&self, _path: &str, _nanos: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_stats_accumulate_and_reset() {
        let s = CubeStats::shared();
        s.record_rows_scanned(100);
        s.record_base_cells(10);
        s.record_cell_merges(25);
        s.record_regions_emitted(4);
        s.record_rows_scanned(50);
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned(), 150);
        assert_eq!(snap.base_cells(), 10);
        assert_eq!(snap.cell_merges(), 25);
        assert_eq!(snap.regions_emitted(), 4);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned(), 0);
        assert_eq!(snap.cell_merges(), 0);
    }

    #[test]
    fn records_accumulate_and_reset() {
        let s = IoStats::shared();
        s.record_region_read(100, 10);
        s.record_region_read(50, 5);
        let snap = s.snapshot();
        assert_eq!(snap.regions_read(), 2);
        assert_eq!(snap.bytes_read(), 150);
        assert_eq!(snap.examples_read(), 15);
        assert!((snap.scan_equivalents(4) - 0.5).abs() < 1e-12);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.regions_read(), 0);
        assert_eq!(snap.scan_equivalents(0), 0.0);
    }

    #[test]
    fn registry_bound_stats_share_atomics() {
        let reg = Registry::shared();
        let io = IoStats::in_registry(&reg);
        let cube = CubeStats::in_registry(&reg);
        io.record_region_read(64, 4);
        cube.record_rows_scanned(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.regions_read(), 1);
        assert_eq!(snap.bytes_read(), 64);
        assert_eq!(snap.examples_read(), 4);
        assert_eq!(snap.rows_scanned(), 1000);
        // From<&_> conversions agree with the registry view.
        assert_eq!(MetricsSnapshot::from(io.as_ref()).regions_read(), 1);
        assert_eq!(MetricsSnapshot::from(cube.as_ref()).rows_scanned(), 1000);
    }

    #[test]
    fn cube_stats_as_recorder_routes_canonical_names() {
        use bellwether_obs::names;
        let s = CubeStats::shared();
        let rec: &dyn Recorder = s.as_ref();
        assert!(rec.enabled());
        rec.add(names::CUBE_PASS_ROWS_SCANNED, 12);
        rec.add(names::CUBE_PASS_CELL_MERGES, 3);
        rec.add("unrelated/counter", 99); // ignored
        rec.record_span("cube_pass/phase1_scan", 5); // dropped
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned(), 12);
        assert_eq!(snap.cell_merges(), 3);
    }

    #[test]
    fn shared_across_threads() {
        let s = IoStats::shared();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_region_read(1, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().regions_read(), 4000);
    }
}
