//! IO accounting shared by all training-data sources.
//!
//! The paper's efficiency claims are stated in *scans over the entire
//! training data* (naive tree ≈ `l·m` scans, RF tree = `l`, single-scan
//! cube = 1). These counters let integration tests assert the claims
//! exactly, independent of wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe IO counters.
#[derive(Debug, Default)]
pub struct IoStats {
    regions_read: AtomicU64,
    bytes_read: AtomicU64,
    examples_read: AtomicU64,
}

impl IoStats {
    /// Fresh counters behind an `Arc` for sharing with sources.
    pub fn shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Record one region read of `bytes` bytes and `examples` examples.
    pub fn record_region_read(&self, bytes: u64, examples: u64) {
        self.regions_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.examples_read.fetch_add(examples, Ordering::Relaxed);
    }

    /// Total region reads.
    pub fn regions_read(&self) -> u64 {
        self.regions_read.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total examples read.
    pub fn examples_read(&self) -> u64 {
        self.examples_read.load(Ordering::Relaxed)
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.regions_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.examples_read.store(0, Ordering::Relaxed);
    }

    /// Equivalent number of full scans given the total region count —
    /// `regions_read / num_regions` as a float.
    pub fn scan_equivalents(&self, num_regions: usize) -> f64 {
        if num_regions == 0 {
            return 0.0;
        }
        self.regions_read() as f64 / num_regions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_reset() {
        let s = IoStats::shared();
        s.record_region_read(100, 10);
        s.record_region_read(50, 5);
        assert_eq!(s.regions_read(), 2);
        assert_eq!(s.bytes_read(), 150);
        assert_eq!(s.examples_read(), 15);
        assert!((s.scan_equivalents(4) - 0.5).abs() < 1e-12);
        s.reset();
        assert_eq!(s.regions_read(), 0);
        assert_eq!(s.scan_equivalents(0), 0.0);
    }

    #[test]
    fn shared_across_threads() {
        let s = IoStats::shared();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_region_read(1, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.regions_read(), 4000);
    }
}
