//! IO accounting shared by all training-data sources.
//!
//! The paper's efficiency claims are stated in *scans over the entire
//! training data* (naive tree ≈ `l·m` scans, RF tree = `l`, single-scan
//! cube = 1). These counters let integration tests assert the claims
//! exactly, independent of wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe IO counters.
#[derive(Debug, Default)]
pub struct IoStats {
    regions_read: AtomicU64,
    bytes_read: AtomicU64,
    examples_read: AtomicU64,
}

impl IoStats {
    /// Fresh counters behind an `Arc` for sharing with sources.
    pub fn shared() -> Arc<IoStats> {
        Arc::new(IoStats::default())
    }

    /// Record one region read of `bytes` bytes and `examples` examples.
    pub fn record_region_read(&self, bytes: u64, examples: u64) {
        self.regions_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.examples_read.fetch_add(examples, Ordering::Relaxed);
    }

    /// Total region reads.
    pub fn regions_read(&self) -> u64 {
        self.regions_read.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total examples read.
    pub fn examples_read(&self) -> u64 {
        self.examples_read.load(Ordering::Relaxed)
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.regions_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.examples_read.store(0, Ordering::Relaxed);
    }

    /// Equivalent number of full scans given the total region count —
    /// `regions_read / num_regions` as a float.
    pub fn scan_equivalents(&self, num_regions: usize) -> f64 {
        if num_regions == 0 {
            return 0.0;
        }
        self.regions_read() as f64 / num_regions as f64
    }
}

/// Shared, thread-safe counters for the CUBE-pass kernel.
///
/// Same pattern as [`IoStats`]: relaxed atomics behind an `Arc`, cheap
/// enough to leave enabled. Workers accumulate locally and publish once
/// per phase, so the counters cost nothing in the per-row hot loop.
#[derive(Debug, Default)]
pub struct CubeStats {
    rows_scanned: AtomicU64,
    base_cells: AtomicU64,
    cell_merges: AtomicU64,
    regions_emitted: AtomicU64,
}

impl CubeStats {
    /// Fresh counters behind an `Arc` for sharing with kernels.
    pub fn shared() -> Arc<CubeStats> {
        Arc::new(CubeStats::default())
    }

    /// Record `n` fact rows scanned in phase 1.
    pub fn record_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` distinct base cells after phase-1 merging.
    pub fn record_base_cells(&self, n: u64) {
        self.base_cells.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` cell-state merge operations (phase-1 chunk merging
    /// plus phase-2 rollup expansion).
    pub fn record_cell_merges(&self, n: u64) {
        self.cell_merges.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` non-empty regions emitted by the rollup.
    pub fn record_regions_emitted(&self, n: u64) {
        self.regions_emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Total fact rows scanned.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Total distinct base cells produced by phase 1.
    pub fn base_cells(&self) -> u64 {
        self.base_cells.load(Ordering::Relaxed)
    }

    /// Total cell-state merge operations.
    pub fn cell_merges(&self) -> u64 {
        self.cell_merges.load(Ordering::Relaxed)
    }

    /// Total non-empty regions emitted.
    pub fn regions_emitted(&self) -> u64 {
        self.regions_emitted.load(Ordering::Relaxed)
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.base_cells.store(0, Ordering::Relaxed);
        self.cell_merges.store(0, Ordering::Relaxed);
        self.regions_emitted.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_stats_accumulate_and_reset() {
        let s = CubeStats::shared();
        s.record_rows_scanned(100);
        s.record_base_cells(10);
        s.record_cell_merges(25);
        s.record_regions_emitted(4);
        s.record_rows_scanned(50);
        assert_eq!(s.rows_scanned(), 150);
        assert_eq!(s.base_cells(), 10);
        assert_eq!(s.cell_merges(), 25);
        assert_eq!(s.regions_emitted(), 4);
        s.reset();
        assert_eq!(s.rows_scanned(), 0);
        assert_eq!(s.cell_merges(), 0);
    }

    #[test]
    fn records_accumulate_and_reset() {
        let s = IoStats::shared();
        s.record_region_read(100, 10);
        s.record_region_read(50, 5);
        assert_eq!(s.regions_read(), 2);
        assert_eq!(s.bytes_read(), 150);
        assert_eq!(s.examples_read(), 15);
        assert!((s.scan_equivalents(4) - 0.5).abs() < 1e-12);
        s.reset();
        assert_eq!(s.regions_read(), 0);
        assert_eq!(s.scan_equivalents(0), 0.0);
    }

    #[test]
    fn shared_across_threads() {
        let s = IoStats::shared();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_region_read(1, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.regions_read(), 4000);
    }
}
