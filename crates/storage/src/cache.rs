//! A bounded decoded-block cache in front of any [`TrainingSource`].
//!
//! The multi-scan algorithms (naive tree ≈ `l·m` scans, RF tree = `l`
//! scans) re-read the *same* regions on every pass. Against a
//! [`crate::DiskSource`] each of those re-reads pays a positioned read
//! plus a full block decode. [`CachedSource`] keeps recently decoded
//! [`RegionBlock`]s in memory under a byte budget so repeat reads are an
//! `Arc` refcount bump.
//!
//! Design points:
//!
//! * **Interior mutability.** Scan algorithms hold `&dyn TrainingSource`
//!   and may share it across scoped worker threads, so the cache state
//!   lives behind a [`Mutex`]. Misses read the inner source *outside*
//!   the lock — parallel workers never serialize on disk IO, only on
//!   the (cheap) map bookkeeping.
//! * **Byte budget, LRU eviction.** Entries are charged their
//!   [`RegionBlock::encoded_len`] and the least-recently-used entry is
//!   evicted once the budget is exceeded. A block alone larger than the
//!   whole budget is served but never cached.
//! * **Honest IO accounting.** Cache hits do not touch the inner
//!   source, so [`TrainingSource::stats`] keeps counting *real* reads
//!   and the paper's scan-count lemmas stay assertable. Hits, misses
//!   and evictions are counted separately in [`CacheStats`], bindable
//!   to a shared `bellwether_obs` registry via
//!   [`CachedSource::with_registry`].
//! * **Bit identity.** A hit returns a shared handle to the very block
//!   the inner source decoded, so cached and uncached scans see
//!   identical data.

use crate::block::RegionBlock;
use crate::metrics::IoStats;
use crate::source::TrainingSource;
use bellwether_obs::{names, Counter, MetricsSnapshot, Recorder, Registry};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Shared, thread-safe cache counters (same pattern as [`IoStats`]).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
}

impl CacheStats {
    /// Fresh counters behind an `Arc` for sharing with caches.
    pub fn shared() -> Arc<CacheStats> {
        Arc::new(CacheStats::default())
    }

    /// Counters bound to the canonical `storage/cache_*` entries of
    /// `reg`: every hit/miss recorded here is visible in
    /// `reg.snapshot()` too.
    pub fn in_registry(reg: &Registry) -> Arc<CacheStats> {
        Arc::new(CacheStats {
            hits: reg.counter(names::STORAGE_CACHE_HITS),
            misses: reg.counter(names::STORAGE_CACHE_MISSES),
            evictions: reg.counter(names::STORAGE_CACHE_EVICTIONS),
            invalidations: reg.counter(names::STORAGE_CACHE_INVALIDATIONS),
        })
    }

    /// Record one read served from the cache.
    pub fn record_hit(&self) {
        self.hits.inc();
    }

    /// Record one read forwarded to the inner source.
    pub fn record_miss(&self) {
        self.misses.inc();
    }

    /// Record `n` blocks evicted under the byte budget.
    pub fn record_evictions(&self, n: u64) {
        self.evictions.add(n);
    }

    /// Record `n` blocks dropped by an explicit invalidation.
    pub fn record_invalidations(&self, n: u64) {
        self.invalidations.add(n);
    }

    /// Point-in-time copy of the counters under their canonical names.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                (names::STORAGE_CACHE_HITS.to_string(), self.hits.get()),
                (names::STORAGE_CACHE_MISSES.to_string(), self.misses.get()),
                (
                    names::STORAGE_CACHE_EVICTIONS.to_string(),
                    self.evictions.get(),
                ),
                (
                    names::STORAGE_CACHE_INVALIDATIONS.to_string(),
                    self.invalidations.get(),
                ),
            ],
            gauges: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
        self.invalidations.reset();
    }
}

impl From<&CacheStats> for MetricsSnapshot {
    fn from(s: &CacheStats) -> MetricsSnapshot {
        s.snapshot()
    }
}

impl Recorder for CacheStats {
    fn add(&self, name: &str, delta: u64) {
        match name {
            names::STORAGE_CACHE_HITS => self.hits.add(delta),
            names::STORAGE_CACHE_MISSES => self.misses.add(delta),
            names::STORAGE_CACHE_EVICTIONS => self.evictions.add(delta),
            names::STORAGE_CACHE_INVALIDATIONS => self.invalidations.add(delta),
            _ => {}
        }
    }

    fn set_gauge(&self, _name: &str, _value: f64) {}

    fn record_span(&self, _path: &str, _nanos: u64) {}
}

#[derive(Debug)]
struct CacheEntry {
    block: Arc<RegionBlock>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<usize, CacheEntry>,
    bytes: usize,
    tick: u64,
}

impl CacheState {
    /// Evict least-recently-used entries (never `keep`) until the byte
    /// total fits `budget`. Returns the number of evictions.
    fn evict_to(&mut self, budget: usize, keep: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let Some(&victim) = self
                .map
                .iter()
                .filter(|(&idx, _)| idx != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(idx, _)| idx)
            else {
                break;
            };
            let entry = self.map.remove(&victim).expect("victim chosen from map");
            self.bytes -= entry.bytes;
            evicted += 1;
        }
        evicted
    }
}

/// A byte-budgeted LRU cache of decoded [`RegionBlock`]s wrapping any
/// inner [`TrainingSource`]. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct CachedSource<S> {
    inner: S,
    budget_bytes: usize,
    state: Mutex<CacheState>,
    cache_stats: Arc<CacheStats>,
    generation: AtomicU64,
}

impl<S: TrainingSource> CachedSource<S> {
    /// Wrap `inner`, keeping at most `budget_bytes` of decoded blocks
    /// (charged by [`RegionBlock::encoded_len`]).
    pub fn new(inner: S, budget_bytes: usize) -> Self {
        CachedSource {
            inner,
            budget_bytes,
            state: Mutex::new(CacheState::default()),
            cache_stats: CacheStats::shared(),
            generation: AtomicU64::new(0),
        }
    }

    /// Like [`CachedSource::new`], but hit/miss/eviction counters are
    /// bound to the canonical `storage/cache_*` entries of `reg`.
    pub fn with_registry(inner: S, budget_bytes: usize, reg: &Registry) -> Self {
        let mut src = CachedSource::new(inner, budget_bytes);
        src.cache_stats = CacheStats::in_registry(reg);
        src
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Lock the cache state, recovering from poison. A thread that
    /// panicked while holding the lock may have left the bookkeeping
    /// half-updated, so recovery drops every cached entry (correctness
    /// never depends on cache contents — the inner source is re-read)
    /// and un-poisons the mutex, instead of propagating the panic to
    /// every subsequent reader forever.
    fn lock_state(&self) -> MutexGuard<'_, CacheState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.state.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.map.clear();
                guard.bytes = 0;
                guard
            }
        }
    }

    /// Shared hit/miss/eviction counters.
    pub fn cache_stats(&self) -> &Arc<CacheStats> {
        &self.cache_stats
    }

    /// Number of blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.lock_state().map.len()
    }

    /// Bytes currently charged against the budget.
    pub fn cached_bytes(&self) -> usize {
        self.lock_state().bytes
    }

    /// Drop every cached block (counters are kept).
    pub fn clear(&self) {
        let mut state = self.lock_state();
        state.map.clear();
        state.bytes = 0;
    }

    /// Drop exactly the cached blocks of `indices` (a no-op for indices
    /// not currently cached) and bump the cache generation. This is the
    /// dirty-region hook of the streaming append path: after new fact
    /// rows change a region's sufficient statistics, the stale decoded
    /// block must leave the cache while every clean region keeps its
    /// warm entry. Counts dropped entries under
    /// `storage/cache_invalidations` and returns that count.
    pub fn invalidate_regions(&self, indices: &[usize]) -> u64 {
        let mut dropped = 0u64;
        {
            let mut state = self.lock_state();
            for &idx in indices {
                if let Some(entry) = state.map.remove(&idx) {
                    state.bytes -= entry.bytes;
                    dropped += 1;
                }
            }
        }
        self.generation.fetch_add(1, Ordering::Relaxed);
        if dropped > 0 {
            self.cache_stats.record_invalidations(dropped);
        }
        dropped
    }

    /// Monotonic generation, bumped once per [`invalidate_regions`]
    /// call. Readers that captured blocks earlier can compare
    /// generations to learn their view may be stale.
    ///
    /// [`invalidate_regions`]: CachedSource::invalidate_regions
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }
}

impl<S: TrainingSource> TrainingSource for CachedSource<S> {
    fn num_regions(&self) -> usize {
        self.inner.num_regions()
    }

    fn feature_arity(&self) -> usize {
        self.inner.feature_arity()
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        self.inner.region_coords(idx)
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        {
            let mut state = self.lock_state();
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state.map.get_mut(&idx) {
                entry.last_used = tick;
                let block = Arc::clone(&entry.block);
                drop(state);
                self.cache_stats.record_hit();
                return Ok(block);
            }
        }
        // Miss: read the inner source outside the lock so concurrent
        // scan workers overlap their IO. Two workers missing the same
        // index both read (and both count a miss); the second insert is
        // a no-op.
        let block = self.inner.read_region(idx)?;
        self.cache_stats.record_miss();
        let bytes = block.encoded_len();
        if bytes <= self.budget_bytes {
            let mut state = self.lock_state();
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state.map.get_mut(&idx) {
                entry.last_used = tick;
            } else {
                state.bytes += bytes;
                state.map.insert(
                    idx,
                    CacheEntry {
                        block: Arc::clone(&block),
                        bytes,
                        last_used: tick,
                    },
                );
                let evicted = state.evict_to(self.budget_bytes, idx);
                if evicted > 0 {
                    self.cache_stats.record_evictions(evicted);
                }
            }
        }
        Ok(block)
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    /// Inner IO counters plus this cache's hit/miss/eviction counters in
    /// one snapshot, so `snapshot().cache_hit_rate()` works directly.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.snapshot();
        snap.counters.extend(self.cache_stats.snapshot().counters);
        snap
    }

    fn find_region(&self, coords: &[u32]) -> Option<usize> {
        self.inner.find_region(coords)
    }

    fn total_examples(&self) -> io::Result<u64> {
        self.inner.total_examples()
    }

    fn shard_starts(&self) -> Option<Vec<usize>> {
        self.inner.shard_starts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemorySource;

    fn blocks(n: usize) -> Vec<RegionBlock> {
        (0..n as u32)
            .map(|r| {
                let mut b = RegionBlock::new(vec![r], 1);
                b.push(r as i64, &[r as f64], (r as f64) * 2.0);
                b
            })
            .collect()
    }

    fn block_bytes() -> usize {
        blocks(1)[0].encoded_len()
    }

    /// Budget holding exactly `n` of the uniform test blocks.
    fn source(regions: usize, budget_blocks: usize) -> CachedSource<MemorySource> {
        CachedSource::new(
            MemorySource::new(blocks(regions)),
            budget_blocks * block_bytes(),
        )
    }

    #[test]
    fn hits_skip_the_inner_source_and_return_identical_blocks() {
        let src = source(4, 4);
        let first = src.read_region(2).unwrap();
        let second = src.read_region(2).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit shares the decoded block");
        let snap = src.snapshot();
        assert_eq!(snap.cache_misses(), 1);
        assert_eq!(snap.cache_hits(), 1);
        // The inner source saw exactly one real read — scan-count
        // accounting stays honest under caching.
        assert_eq!(snap.regions_read(), 1);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let src = source(3, 2);
        src.read_region(0).unwrap();
        src.read_region(1).unwrap();
        assert_eq!(src.cached_blocks(), 2);
        // Third block evicts the least recently used (region 0).
        src.read_region(2).unwrap();
        assert_eq!(src.cached_blocks(), 2);
        assert_eq!(src.cached_bytes(), 2 * block_bytes());
        assert_eq!(src.snapshot().cache_evictions(), 1);
        // Region 1 is still cached, region 0 is gone.
        src.read_region(1).unwrap();
        src.read_region(0).unwrap();
        let snap = src.snapshot();
        assert_eq!(snap.cache_hits(), 1);
        assert_eq!(snap.cache_misses(), 4);
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        let src = source(3, 2);
        src.read_region(0).unwrap();
        src.read_region(1).unwrap();
        src.read_region(0).unwrap(); // refresh 0 → 1 is now LRU
        src.read_region(2).unwrap(); // evicts 1
        src.read_region(0).unwrap();
        assert_eq!(src.snapshot().cache_hits(), 2);
        src.read_region(1).unwrap();
        assert_eq!(src.snapshot().cache_misses(), 4);
    }

    #[test]
    fn oversized_blocks_are_served_but_never_cached() {
        let src = CachedSource::new(MemorySource::new(blocks(2)), block_bytes() - 1);
        for _ in 0..3 {
            assert_eq!(src.read_region(0).unwrap().n(), 1);
        }
        assert_eq!(src.cached_blocks(), 0);
        assert_eq!(src.cached_bytes(), 0);
        let snap = src.snapshot();
        assert_eq!(snap.cache_misses(), 3);
        assert_eq!(snap.cache_hits(), 0);
        assert_eq!(snap.cache_evictions(), 0);
    }

    #[test]
    fn zero_budget_cache_is_a_transparent_wrapper() {
        let src = CachedSource::new(MemorySource::new(blocks(3)), 0);
        for idx in 0..3 {
            let got = src.read_region(idx).unwrap();
            let direct = src.inner().read_region(idx).unwrap();
            assert_eq!(got, direct);
        }
        assert_eq!(src.cached_blocks(), 0);
    }

    #[test]
    fn clear_drops_blocks_but_keeps_counters() {
        let src = source(2, 2);
        src.read_region(0).unwrap();
        src.read_region(0).unwrap();
        src.clear();
        assert_eq!(src.cached_blocks(), 0);
        assert_eq!(src.cached_bytes(), 0);
        src.read_region(0).unwrap();
        let snap = src.snapshot();
        assert_eq!(snap.cache_hits(), 1);
        assert_eq!(snap.cache_misses(), 2);
    }

    #[test]
    fn invalidation_drops_exactly_the_named_regions() {
        let src = source(4, 4);
        for idx in 0..4 {
            src.read_region(idx).unwrap();
        }
        assert_eq!(src.cached_blocks(), 4);
        assert_eq!(src.generation(), 0);

        // Invalidate two cached regions plus one that is not cached.
        let dropped = src.invalidate_regions(&[1, 3, 17]);
        assert_eq!(dropped, 2);
        assert_eq!(src.cached_blocks(), 2);
        assert_eq!(src.cached_bytes(), 2 * block_bytes());
        assert_eq!(src.generation(), 1);
        assert_eq!(src.snapshot().counter(
            names::STORAGE_CACHE_INVALIDATIONS).unwrap(), 2);

        // Clean regions still hit; invalidated regions re-read.
        src.read_region(0).unwrap();
        src.read_region(1).unwrap();
        let snap = src.snapshot();
        assert_eq!(snap.cache_hits(), 1);
        assert_eq!(snap.cache_misses(), 5);

        // An all-miss invalidation still bumps the generation but
        // counts nothing.
        assert_eq!(src.invalidate_regions(&[40, 41]), 0);
        assert_eq!(src.generation(), 2);
        assert_eq!(src.snapshot().counter(
            names::STORAGE_CACHE_INVALIDATIONS).unwrap(), 2);
    }

    #[test]
    fn registry_bound_invalidations_reach_the_registry() {
        let reg = Registry::shared();
        let src = CachedSource::with_registry(MemorySource::new(blocks(3)), 1 << 20, &reg);
        for idx in 0..3 {
            src.read_region(idx).unwrap();
        }
        src.invalidate_regions(&[0, 2]);
        assert_eq!(
            reg.snapshot().counter(names::STORAGE_CACHE_INVALIDATIONS),
            Some(2)
        );
    }

    #[test]
    fn works_behind_a_trait_object() {
        let src = source(4, 4);
        let dyn_src: &dyn TrainingSource = &src;
        assert_eq!(dyn_src.num_regions(), 4);
        assert_eq!(dyn_src.feature_arity(), 1);
        assert_eq!(dyn_src.region_coords(3), &[3]);
        assert_eq!(dyn_src.find_region(&[2]), Some(2));
        assert_eq!(dyn_src.total_examples().unwrap(), 4);
        dyn_src.read_region(1).unwrap();
        dyn_src.read_region(1).unwrap();
        assert_eq!(dyn_src.snapshot().cache_hits(), 1);
    }

    #[test]
    fn registry_bound_cache_reports_into_registry() {
        let reg = Registry::shared();
        let src = CachedSource::with_registry(MemorySource::new(blocks(2)), 1 << 20, &reg);
        src.read_region(0).unwrap();
        src.read_region(0).unwrap();
        src.read_region(1).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.cache_hits(), 1);
        assert_eq!(snap.cache_misses(), 2);
        assert!((snap.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_readers_get_identical_blocks() {
        let src = Arc::new(source(8, 8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let src = Arc::clone(&src);
                std::thread::spawn(move || {
                    for idx in 0..src.num_regions() {
                        let block = src.read_region(idx).unwrap();
                        assert_eq!(block.region, vec![idx as u32]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = src.snapshot();
        // Every lookup was counted exactly once. (Racing misses on one
        // index may each count a miss, so only a lower bound on hits is
        // portable — every index is missed at least once.)
        assert_eq!(snap.cache_hits() + snap.cache_misses(), 4 * 8);
        assert!(snap.cache_misses() >= 8);
        assert_eq!(src.cached_blocks(), 8);
    }

    #[test]
    fn recovers_from_a_poisoned_lock() {
        let src = Arc::new(source(4, 4));
        src.read_region(0).unwrap();
        src.read_region(1).unwrap();
        assert_eq!(src.cached_blocks(), 2);

        // Poison the state mutex: a panicking thread dies while holding
        // the guard.
        let poisoner = Arc::clone(&src);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("worker died holding the cache lock");
        });
        assert!(handle.join().is_err());
        assert!(src.state.is_poisoned());

        // Subsequent readers recover instead of panicking: the cache is
        // cleared (its bookkeeping can no longer be trusted), the mutex
        // is un-poisoned, and reads keep working.
        assert_eq!(*src.read_region(0).unwrap(), blocks(4)[0]);
        assert!(!src.state.is_poisoned());
        src.read_region(0).unwrap();
        let snap = src.snapshot();
        // Read after recovery missed (entries dropped), then hit again.
        assert!(snap.cache_misses() >= 3);
        assert!(snap.cache_hits() >= 1);
        assert!(src.cached_blocks() >= 1);
    }

    #[test]
    fn cache_stats_as_recorder_routes_canonical_names() {
        let s = CacheStats::shared();
        let rec: &dyn Recorder = s.as_ref();
        rec.add(names::STORAGE_CACHE_HITS, 5);
        rec.add(names::STORAGE_CACHE_MISSES, 2);
        rec.add("unrelated/counter", 9); // ignored
        let snap = s.snapshot();
        assert_eq!(snap.cache_hits(), 5);
        assert_eq!(snap.cache_misses(), 2);
        s.reset();
        assert_eq!(s.snapshot().cache_hits(), 0);
    }
}
