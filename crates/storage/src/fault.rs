//! Deterministic fault injection for training sources.
//!
//! Real fault tolerance cannot be tested against real hardware faults,
//! so [`FaultySource`] wraps any [`TrainingSource`] and injects the
//! failure modes a production deployment sees — transient `io::Error`s,
//! bit-flip corruption, extra latency — driven by a seeded [`FaultPlan`]
//! that makes every run reproducible: the same plan over the same source
//! injects the same faults at the same region indices, whatever the
//! thread count.
//!
//! Faults apply to [`TrainingSource::read_region`] only; metadata
//! queries (`num_regions`, `region_coords`, `find_region`) always
//! succeed, matching a disk whose index loaded fine but whose data
//! blocks are suspect.

use crate::block::RegionBlock;
use crate::format::{decode_block_v2, encode_block_v2};
use crate::metrics::IoStats;
use crate::source::TrainingSource;
use bellwether_obs::{names, Counter, MetricsSnapshot, Registry};
use std::io;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64-style finalizer: decorrelates `(seed, idx)` pairs so fault
/// placement looks arbitrary but is a pure function of the plan.
fn mix(seed: u64, idx: u64) -> u64 {
    let mut z = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seeded schedule of injected faults.
///
/// Roughly one in `period` regions is selected for each configured fault
/// kind; *which* regions is a pure function of `(seed, region index)`,
/// so tests can enumerate the plan up front via
/// [`FaultPlan::is_transient_region`] / [`FaultPlan::is_corrupt_region`]
/// and assert exact outcomes.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    transient_period: u64,
    transient_depth: u32,
    corrupt_period: u64,
    latency: Option<Duration>,
}

impl FaultPlan {
    /// A plan that injects nothing (configure with the `*_every`
    /// methods).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_period: 0,
            transient_depth: 0,
            corrupt_period: 0,
            latency: None,
        }
    }

    /// Select ~one in `period` regions for transient failures: their
    /// first `depth` read attempts fail with `ErrorKind::Interrupted`,
    /// after which reads succeed — the disk-flake a retry layer must
    /// absorb. `period = 1` selects every region; `period = 0` disables.
    pub fn transient_every(mut self, period: u64, depth: u32) -> Self {
        self.transient_period = period;
        self.transient_depth = depth;
        self
    }

    /// Select ~one in `period` regions for permanent corruption: every
    /// read returns the block with one deterministically chosen bit
    /// flipped in its v2 encoding, which the checksum rejects as
    /// [`crate::format::CorruptBlock`]. `period = 0` disables.
    pub fn corrupt_every(mut self, period: u64) -> Self {
        self.corrupt_period = period;
        self
    }

    /// Add `latency` to every read (injected slowness; never changes
    /// results).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Whether region `idx` is selected for transient failures.
    pub fn is_transient_region(&self, idx: usize) -> bool {
        self.transient_period != 0
            && mix(self.seed, idx as u64).is_multiple_of(self.transient_period)
    }

    /// Whether region `idx` is selected for permanent corruption.
    pub fn is_corrupt_region(&self, idx: usize) -> bool {
        self.corrupt_period != 0
            && mix(self.seed ^ 0x00C0_FFEE, idx as u64).is_multiple_of(self.corrupt_period)
    }

    /// Number of failing attempts before a transient region recovers.
    pub fn transient_depth(&self) -> u32 {
        self.transient_depth
    }

    /// Bit position to flip when corrupting an `len`-byte encoding of
    /// region `idx`.
    fn corrupt_bit(&self, idx: usize, len: usize) -> usize {
        (mix(self.seed ^ 0x0BAD_B10C, idx as u64) % (len as u64 * 8)) as usize
    }
}

/// A [`TrainingSource`] wrapper injecting the faults of a [`FaultPlan`].
///
/// Transient faults are stateful per region (the first `depth` attempts
/// fail, then reads succeed), so composing with
/// [`crate::RetryingSource`] demonstrates end-to-end recovery;
/// corruption is stateless and permanent, so retry layers must classify
/// and give up. Injected faults are counted under
/// `storage/faults_injected`; injected corruption also ticks the wrapped
/// source's `storage/corrupt_blocks`, exactly as a real rotten block
/// would.
pub struct FaultySource<S> {
    inner: S,
    plan: FaultPlan,
    attempts: Vec<AtomicU32>,
    faults: Counter,
}

impl<S: TrainingSource> FaultySource<S> {
    /// Wrap `inner`, injecting the faults scheduled by `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let attempts = (0..inner.num_regions()).map(|_| AtomicU32::new(0)).collect();
        FaultySource {
            inner,
            plan,
            attempts,
            faults: Counter::new(),
        }
    }

    /// Like [`FaultySource::new`], but the injected-fault counter is
    /// bound to the canonical `storage/faults_injected` entry of `reg`.
    pub fn with_registry(inner: S, plan: FaultPlan, reg: &Registry) -> Self {
        let mut src = FaultySource::new(inner, plan);
        src.faults = reg.counter(names::STORAGE_FAULTS_INJECTED);
        src
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The driving plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far (transients + corrupt reads).
    pub fn faults_injected(&self) -> u64 {
        self.faults.get()
    }

    /// Forget transient-fault history, so previously recovered regions
    /// fail again on their next reads (a "second incident").
    pub fn reset_transients(&self) {
        for a in &self.attempts {
            a.store(0, Ordering::Relaxed);
        }
    }
}

impl<S: TrainingSource> TrainingSource for FaultySource<S> {
    fn num_regions(&self) -> usize {
        self.inner.num_regions()
    }

    fn feature_arity(&self) -> usize {
        self.inner.feature_arity()
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        self.inner.region_coords(idx)
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        if let Some(latency) = self.plan.latency {
            std::thread::sleep(latency);
        }
        if self.plan.is_transient_region(idx) {
            let attempt = self.attempts[idx].fetch_add(1, Ordering::Relaxed);
            if attempt < self.plan.transient_depth {
                self.faults.inc();
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient fault (attempt {attempt})"),
                ));
            }
        }
        if self.plan.is_corrupt_region(idx) {
            // Serve the real block through a corrupted v2 encoding so the
            // error comes from the genuine checksum path, not a mock.
            let block = self.inner.read_region(idx)?;
            let mut buf = Vec::with_capacity(block.encoded_len() + 4);
            encode_block_v2(&block, &mut buf);
            let bit = self.plan.corrupt_bit(idx, buf.len());
            buf[bit / 8] ^= 1 << (bit % 8);
            let err = decode_block_v2(&buf).expect_err("flipped bit must fail the checksum");
            self.faults.inc();
            self.inner.stats().record_corrupt_block();
            return Err(err);
        }
        self.inner.read_region(idx)
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    /// Inner counters plus `storage/faults_injected`.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.snapshot();
        snap.counters
            .push((names::STORAGE_FAULTS_INJECTED.to_string(), self.faults.get()));
        snap
    }

    fn find_region(&self, coords: &[u32]) -> Option<usize> {
        self.inner.find_region(coords)
    }

    fn shard_starts(&self) -> Option<Vec<usize>> {
        self.inner.shard_starts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::is_corrupt;
    use crate::source::MemorySource;

    fn blocks(n: usize) -> Vec<RegionBlock> {
        (0..n as u32)
            .map(|r| {
                let mut b = RegionBlock::new(vec![r], 2);
                b.push(r as i64, &[r as f64, 1.0], r as f64 * 3.0);
                b
            })
            .collect()
    }

    #[test]
    fn no_faults_is_a_transparent_wrapper() {
        let src = FaultySource::new(MemorySource::new(blocks(6)), FaultPlan::new(7));
        for idx in 0..6 {
            assert_eq!(src.read_region(idx).unwrap().region, vec![idx as u32]);
        }
        assert_eq!(src.faults_injected(), 0);
    }

    #[test]
    fn plan_selection_is_deterministic_and_seeded() {
        let plan_a = FaultPlan::new(42).transient_every(3, 1).corrupt_every(4);
        let plan_b = FaultPlan::new(42).transient_every(3, 1).corrupt_every(4);
        let plan_c = FaultPlan::new(43).transient_every(3, 1).corrupt_every(4);
        let pick = |p: &FaultPlan| {
            (0..64)
                .map(|i| (p.is_transient_region(i), p.is_corrupt_region(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(&plan_a), pick(&plan_b), "same seed, same plan");
        assert_ne!(pick(&plan_a), pick(&plan_c), "different seed differs");
        // Period 1 selects everything.
        let all = FaultPlan::new(1).transient_every(1, 2);
        assert!((0..64).all(|i| all.is_transient_region(i)));
        assert_eq!(all.transient_depth(), 2);
    }

    #[test]
    fn transient_regions_fail_then_recover() {
        let plan = FaultPlan::new(5).transient_every(1, 2);
        let src = FaultySource::new(MemorySource::new(blocks(2)), plan);
        for attempt in 0..2 {
            let err = src.read_region(0).expect_err("injected fault expected");
            assert_eq!(err.kind(), io::ErrorKind::Interrupted, "attempt {attempt}");
        }
        // Third attempt recovers and reads the true block.
        assert_eq!(src.read_region(0).unwrap().region, vec![0]);
        assert_eq!(src.faults_injected(), 2);
        // Only the failed attempts were faults; the real read was
        // counted by the inner source exactly once.
        assert_eq!(src.snapshot().regions_read(), 1);
        // reset_transients re-arms the fault.
        src.reset_transients();
        assert!(src.read_region(0).is_err());
    }

    #[test]
    fn corrupt_regions_fail_the_real_checksum_path() {
        let plan = FaultPlan::new(9).corrupt_every(1);
        let src = FaultySource::new(MemorySource::new(blocks(3)), plan);
        for idx in 0..3 {
            let err = src.read_region(idx).expect_err("corruption expected");
            assert!(is_corrupt(&err), "region {idx}: {err}");
            // Corruption is permanent: the next read fails identically.
            let again = src.read_region(idx).expect_err("still corrupt");
            assert!(is_corrupt(&again));
        }
        assert_eq!(src.faults_injected(), 6);
        assert_eq!(src.snapshot().corrupt_blocks(), 6);
    }

    #[test]
    fn registry_bound_faults_show_in_registry_snapshot() {
        let reg = Registry::new();
        let plan = FaultPlan::new(3).transient_every(1, 1);
        let src = FaultySource::with_registry(MemorySource::new(blocks(2)), plan, &reg);
        assert!(src.read_region(0).is_err());
        assert!(src.read_region(0).is_ok());
        assert_eq!(reg.snapshot().faults_injected(), 1);
        assert_eq!(src.snapshot().faults_injected(), 1);
    }

    #[test]
    fn latency_injection_preserves_results() {
        let plan = FaultPlan::new(4).with_latency(Duration::from_micros(50));
        let src = FaultySource::new(MemorySource::new(blocks(2)), plan);
        assert_eq!(src.read_region(1).unwrap().region, vec![1]);
        assert_eq!(src.faults_injected(), 0);
    }
}
