//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), implemented
//! with a compile-time lookup table so the offline build environment
//! needs no `crc32fast` dependency.
//!
//! Used by the v2 on-disk format to checksum every region block: CRC-32
//! detects all single-bit and two-bit errors, any odd number of bit
//! errors, and any burst shorter than 32 bits — which covers the
//! realistic "a byte rotted on disk" failure mode exactly.

/// 256-entry table for the reflected IEEE polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (IEEE polynomial, `0xFFFFFFFF` init and final xor —
/// byte-compatible with zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data = b"bellwether region block payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "byte {byte} bit {bit}");
            }
        }
    }
}
