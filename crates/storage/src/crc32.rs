//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), implemented
//! with compile-time lookup tables so the offline build environment
//! needs no `crc32fast` dependency.
//!
//! Used by the v2 on-disk format to checksum every region block: CRC-32
//! detects all single-bit and two-bit errors, any odd number of bit
//! errors, and any burst shorter than 32 bits — which covers the
//! realistic "a byte rotted on disk" failure mode exactly.
//!
//! Two implementations live here:
//!
//! * [`crc32`] / [`crc32_update`] — *slice-by-8*: eight 256-entry
//!   tables let the inner loop fold 8 input bytes per iteration with
//!   eight independent table lookups, roughly 4-6x the bytewise
//!   throughput. This is the production path, and [`crc32_update`] is
//!   incremental so [`crate::format`] can fuse checksum computation
//!   into block decoding (one touch per block instead of two).
//! * [`crc32_bytewise`] — the original one-table-lookup-per-byte
//!   implementation, kept as the reference oracle: a property test
//!   checks the slice-by-8 path agrees with it on random lengths and
//!   alignments.

/// Raw CRC register initial value (all ones, per the IEEE spec).
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Eight 256-entry tables for the reflected IEEE polynomial
/// `0xEDB88320`. `TABLES[0]` is the classic bytewise table;
/// `TABLES[k][b]` is the CRC contribution of byte `b` seen `k` bytes
/// before the current fold point, so eight lookups advance the
/// register by eight input bytes at once.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Advance a raw CRC register by exactly eight bytes (one slice-by-8
/// fold). Exposed to the format module so decode loops that already
/// walk the payload in 8-byte values can checksum each value in the
/// same pass.
#[inline]
pub(crate) fn crc32_step8(crc: u32, chunk: &[u8; 8]) -> u32 {
    let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
    let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
    TABLES[7][(lo & 0xFF) as usize]
        ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
        ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
        ^ TABLES[4][(lo >> 24) as usize]
        ^ TABLES[3][(hi & 0xFF) as usize]
        ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
        ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
        ^ TABLES[0][(hi >> 24) as usize]
}

/// Advance a raw CRC register (pre-init, pre-xor — start from
/// [`CRC_INIT`]) over `data` using slice-by-8, returning the new
/// register value. Feed sections in order and finish with
/// [`crc32_finish`] to get the same digest as [`crc32`] over their
/// concatenation.
#[inline]
pub fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        crc = crc32_step8(crc, chunk.try_into().expect("chunks_exact yields 8 bytes"));
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Final xor turning a raw register into the published CRC-32 digest.
#[inline]
pub fn crc32_finish(crc: u32) -> u32 {
    crc ^ 0xFFFF_FFFF
}

/// CRC-32 of `data` (IEEE polynomial, `0xFFFFFFFF` init and final xor —
/// byte-compatible with zlib's `crc32`). Slice-by-8 fast path.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, data))
}

/// Reference bytewise CRC-32 (the original implementation). Identical
/// output to [`crc32`], one table lookup per byte. Kept as the oracle
/// for the slice-by-8 path and for the kernel microbenchmarks.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let mut crc = CRC_INIT;
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc32_finish(crc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_prop::{check, Rng};

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        // The oracle agrees on the same vectors.
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bytewise(b""), 0);
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data = b"bellwether region block payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn slice_by_8_matches_bytewise_on_random_inputs() {
        // Lengths straddle the 8-byte fold boundary (0..=40 covers every
        // remainder class several times), and a random start offset
        // exercises unaligned slices.
        check("crc32/slice_by_8_equivalence", 500, |rng: &mut Rng| {
            let len = rng.usize_in(0, 40) + [0, 64, 1024][rng.usize_in(0, 2)];
            let offset = rng.usize_in(0, 7);
            let bytes: Vec<u8> =
                (0..offset + len).map(|_| rng.u32_in(0, 255) as u8).collect();
            let slice = &bytes[offset..];
            assert_eq!(crc32(slice), crc32_bytewise(slice));
        });
    }

    #[test]
    fn incremental_update_matches_one_shot_at_any_split() {
        let data: Vec<u8> = (0..200u32).map(|i| (i * 7 + 3) as u8).collect();
        let whole = crc32(&data);
        for split in 0..=data.len() {
            let crc = crc32_update(CRC_INIT, &data[..split]);
            let crc = crc32_update(crc, &data[split..]);
            assert_eq!(crc32_finish(crc), whole, "split {split}");
        }
    }
}
