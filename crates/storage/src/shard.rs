//! Sharded on-disk layout for out-of-core training data.
//!
//! A sharded dataset is a directory holding one v2 block file
//! (`shard-NNNN.bwtd`, written by [`crate::TrainingWriter`]) per shard
//! plus a small CRC-32-checksummed manifest (`manifest.bwsm`). Shards
//! partition the global region order into **contiguous ranges**: shard
//! `s` holds regions `[starts[s], starts[s+1])` of the single-file scan
//! order. Concatenating the shards ascending therefore reproduces the
//! exact region sequence a single `.bwtd` file would serve — which is
//! what makes the two-level scan merge (per-shard accumulators merged in
//! ascending shard order) bit-identical to a flat scan.
//!
//! Every shard file is a complete, self-describing training-data file,
//! so the whole PR-4 fault stack applies *per shard*:
//! [`ShardedSource::open_layered`] lets callers wrap each shard's
//! [`DiskSource`] in any combination of
//! `RetryingSource`/`FaultySource`/`CachedSource` before the sharded
//! view is assembled.
//!
//! # Appends and generations
//!
//! A sharded layout is never rewritten in place. An append (new fact
//! rows changing some regions' training blocks) lands as an **overlay
//! file** — one more complete `.bwtd` file holding only the replaced
//! blocks in ascending global-region order — plus an atomically
//! swapped manifest whose **generation** is bumped and whose overlay
//! list says which global region index now resolves to which overlay
//! entry ([`ShardAppender`]). Readers that opened the old manifest keep
//! serving a consistent pre-append snapshot (their files still exist,
//! untouched); [`ShardedSource::refresh`] adopts the new generation in
//! place. A manifest with appends is written as format **version 2**;
//! a reader that only knows version 1 rejects it structurally
//! ("unsupported manifest version") instead of ever seeing torn state.
//! Generation-0 layouts keep writing byte-identical version-1
//! manifests, so old readers and old fixtures stay valid.

use crate::block::RegionBlock;
use crate::crc32::crc32;
use crate::metrics::IoStats;
use crate::reader::DiskSource;
use crate::source::TrainingSource;
use crate::writer::TrainingWriter;
use bellwether_obs::{names, Counter, MetricsSnapshot, Registry};
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// File name of the manifest inside a sharded dataset directory.
pub const MANIFEST_NAME: &str = "manifest.bwsm";

/// Magic bytes opening a manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"BWSM";

/// Manifest format version written for generation-0 layouts (no
/// overlays) — and the only version pre-append readers understand.
pub const MANIFEST_VERSION_V1: u32 = 1;

/// Manifest format version written once a layout has been appended
/// over (carries the generation and the overlay table).
pub const MANIFEST_VERSION: u32 = 2;

/// One shard's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard file name, relative to the manifest's directory.
    pub file: String,
    /// Regions stored in this shard.
    pub regions: u64,
    /// Training examples stored in this shard.
    pub examples: u64,
    /// Size of the shard file in bytes (cheap integrity check at open).
    pub bytes: u64,
}

/// One overlay file's entry in the manifest: a complete `.bwtd` file of
/// replacement blocks written by one append, later overlays shadowing
/// earlier ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayMeta {
    /// Overlay file name, relative to the manifest's directory.
    pub file: String,
    /// Size of the overlay file in bytes (integrity check at open).
    pub bytes: u64,
    /// Ascending global region indices replaced by this overlay; the
    /// block for `regions[i]` is the overlay file's local region `i`.
    pub regions: Vec<u64>,
}

/// The checksummed description of a sharded dataset: shared feature and
/// region arity plus per-shard entries in ascending global-region order,
/// and — once appended over — the generation counter and overlay table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Feature arity shared by every shard.
    pub p: u32,
    /// Region-coordinate arity shared by every shard.
    pub arity: u32,
    /// Append generation: 0 for a freshly written layout, bumped once
    /// per [`ShardAppender::finish`].
    pub generation: u64,
    /// Total training examples across the dataset as currently visible
    /// (shard totals corrected for replaced blocks).
    pub examples: u64,
    /// Shards, ascending: shard `s` holds the next `shards[s].regions`
    /// regions of the global scan order.
    pub shards: Vec<ShardMeta>,
    /// Overlay files in append order (ascending generation).
    pub overlays: Vec<OverlayMeta>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sharded manifest truncated",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl ShardManifest {
    /// Total regions across all shards.
    pub fn total_regions(&self) -> u64 {
        self.shards.iter().map(|s| s.regions).sum()
    }

    /// Total training examples currently visible (tracks block
    /// replacements across appends).
    pub fn total_examples(&self) -> u64 {
        self.examples
    }

    /// Global start index of each shard (ascending, first is 0).
    pub fn shard_starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.shards.len());
        let mut acc = 0usize;
        for s in &self.shards {
            starts.push(acc);
            acc += s.regions as usize;
        }
        starts
    }

    /// Serialize: magic, version, arities, shard entries, CRC-32 trailer
    /// over everything preceding it. A generation-0 manifest without
    /// overlays encodes as byte-identical version 1 (old readers keep
    /// working); any appended-over layout encodes as version 2, which a
    /// version-1-only reader rejects structurally instead of serving a
    /// stale region view.
    pub fn encode(&self) -> Vec<u8> {
        let v1 = self.generation == 0
            && self.overlays.is_empty()
            && self.examples == self.shards.iter().map(|s| s.examples).sum::<u64>();
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        put_u32(&mut out, if v1 { MANIFEST_VERSION_V1 } else { MANIFEST_VERSION });
        put_u32(&mut out, self.p);
        put_u32(&mut out, self.arity);
        if !v1 {
            put_u64(&mut out, self.generation);
            put_u64(&mut out, self.examples);
        }
        put_u32(&mut out, self.shards.len() as u32);
        for s in &self.shards {
            put_u32(&mut out, s.file.len() as u32);
            out.extend_from_slice(s.file.as_bytes());
            put_u64(&mut out, s.regions);
            put_u64(&mut out, s.examples);
            put_u64(&mut out, s.bytes);
        }
        if !v1 {
            put_u32(&mut out, self.overlays.len() as u32);
            for o in &self.overlays {
                put_u32(&mut out, o.file.len() as u32);
                out.extend_from_slice(o.file.as_bytes());
                put_u64(&mut out, o.bytes);
                put_u64(&mut out, o.regions.len() as u64);
                for &r in &o.regions {
                    put_u64(&mut out, r);
                }
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode and checksum-validate a manifest.
    pub fn decode(bytes: &[u8]) -> io::Result<ShardManifest> {
        if bytes.len() < 4 + 4 + 4 + 4 + 4 + 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sharded manifest too short",
            ));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(payload) != stored {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sharded manifest checksum mismatch",
            ));
        }
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        if cur.take(4)? != MANIFEST_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a sharded manifest (bad magic)",
            ));
        }
        let version = cur.u32()?;
        if version != MANIFEST_VERSION_V1 && version != MANIFEST_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported manifest version {version}"),
            ));
        }
        let p = cur.u32()?;
        let arity = cur.u32()?;
        let (generation, examples) = if version >= MANIFEST_VERSION {
            (cur.u64()?, Some(cur.u64()?))
        } else {
            (0, None)
        };
        let take_name = |cur: &mut Cursor<'_>, what: &str| -> io::Result<String> {
            let len = cur.u32()? as usize;
            Ok(std::str::from_utf8(cur.take(len)?)
                .map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{what} name not utf-8"),
                    )
                })?
                .to_string())
        };
        let n = cur.u32()? as usize;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let file = take_name(&mut cur, "shard")?;
            let regions = cur.u64()?;
            let examples = cur.u64()?;
            let bytes = cur.u64()?;
            shards.push(ShardMeta {
                file,
                regions,
                examples,
                bytes,
            });
        }
        let mut overlays = Vec::new();
        if version >= MANIFEST_VERSION {
            let total: u64 = shards.iter().map(|s| s.regions).sum();
            let n = cur.u32()? as usize;
            for _ in 0..n {
                let file = take_name(&mut cur, "overlay")?;
                let bytes = cur.u64()?;
                let count = cur.u64()? as usize;
                let mut regions = Vec::with_capacity(count);
                for _ in 0..count {
                    regions.push(cur.u64()?);
                }
                let ascending = regions.windows(2).all(|w| w[0] < w[1]);
                if !ascending || regions.last().is_some_and(|&r| r >= total) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("overlay {file} region list invalid"),
                    ));
                }
                overlays.push(OverlayMeta {
                    file,
                    bytes,
                    regions,
                });
            }
        }
        if cur.pos != payload.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after sharded manifest",
            ));
        }
        let examples = examples.unwrap_or_else(|| shards.iter().map(|s| s.examples).sum());
        Ok(ShardManifest {
            p,
            arity,
            generation,
            examples,
            shards,
            overlays,
        })
    }

    /// Write atomically (temp + fsync + rename), same discipline as
    /// [`TrainingWriter::finish`].
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut f = File::create(&tmp)?;
        f.write_all(&self.encode())?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Read and validate the manifest at `path`.
    pub fn read(path: &Path) -> io::Result<ShardManifest> {
        ShardManifest::decode(&fs::read(path)?)
    }
}

/// Canonical shard file name for shard `s`.
pub fn shard_file_name(s: usize) -> String {
    format!("shard-{s:04}.bwtd")
}

/// Canonical overlay file name for the append creating generation `g`.
pub fn overlay_file_name(g: u64) -> String {
    format!("overlay-{g:04}.bwtd")
}

/// Split `total` regions into `shards` contiguous even ranges (earlier
/// shards take the remainder), the default partition plan.
pub fn even_shard_plan(total: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let base = total / shards;
    let rem = total % shards;
    (0..shards)
        .map(|s| base + usize::from(s < rem))
        .collect()
}

/// Streams region blocks into per-shard [`TrainingWriter`]s according to
/// a fixed partition plan, then writes the checksummed manifest. Only
/// one shard's writer is open at a time and blocks are encoded as they
/// arrive — nothing is ever materialised beyond the block being written.
pub struct ShardedWriter {
    dir: PathBuf,
    p: u32,
    arity: u32,
    plan: Vec<usize>,
    shard: usize,
    written_in_shard: usize,
    examples_in_shard: u64,
    current: Option<TrainingWriter>,
    metas: Vec<ShardMeta>,
}

impl ShardedWriter {
    /// Create a sharded dataset under `dir` (created if absent). `plan`
    /// gives the number of regions per shard in ascending global order;
    /// [`even_shard_plan`] is the usual choice. Blocks must then arrive
    /// via [`ShardedWriter::write_region`] in global scan order.
    pub fn create(dir: &Path, p: u32, arity: u32, plan: Vec<usize>) -> io::Result<Self> {
        if plan.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "shard plan must name at least one shard",
            ));
        }
        fs::create_dir_all(dir)?;
        Ok(ShardedWriter {
            dir: dir.to_path_buf(),
            p,
            arity,
            plan,
            shard: 0,
            written_in_shard: 0,
            examples_in_shard: 0,
            current: None,
            metas: Vec::new(),
        })
    }

    fn shard_path(&self, s: usize) -> PathBuf {
        self.dir.join(shard_file_name(s))
    }

    /// Close the current shard file and record its manifest entry.
    fn close_shard(&mut self) -> io::Result<()> {
        let path = self.shard_path(self.shard);
        let writer = match self.current.take() {
            Some(w) => w,
            // A zero-region shard still gets a (valid, empty) file so
            // the manifest never points at a missing path.
            None => TrainingWriter::create(&path, self.p, self.arity)?,
        };
        writer.finish()?;
        let bytes = fs::metadata(&path)?.len();
        self.metas.push(ShardMeta {
            file: shard_file_name(self.shard),
            regions: self.written_in_shard as u64,
            examples: self.examples_in_shard,
            bytes,
        });
        self.shard += 1;
        self.written_in_shard = 0;
        self.examples_in_shard = 0;
        Ok(())
    }

    /// Append the next region of the global scan order; shard files
    /// advance automatically at the plan's boundaries.
    pub fn write_region(&mut self, block: &RegionBlock) -> io::Result<()> {
        // Skip over zero-region shards in the plan.
        while self.shard < self.plan.len() && self.written_in_shard == self.plan[self.shard] {
            self.close_shard()?;
        }
        if self.shard >= self.plan.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more regions written than the shard plan holds",
            ));
        }
        if self.current.is_none() {
            self.current = Some(TrainingWriter::create(
                &self.shard_path(self.shard),
                self.p,
                self.arity,
            )?);
        }
        self.current
            .as_mut()
            .expect("writer opened above")
            .write_region(block)?;
        self.written_in_shard += 1;
        self.examples_in_shard += block.n() as u64;
        Ok(())
    }

    /// Regions written so far (across all shards).
    pub fn regions_written(&self) -> usize {
        self.metas.iter().map(|m| m.regions as usize).sum::<usize>() + self.written_in_shard
    }

    /// Finish every remaining shard and write the manifest atomically.
    /// Fails if fewer regions arrived than the plan promised.
    pub fn finish(mut self) -> io::Result<ShardManifest> {
        while self.shard < self.plan.len() {
            if self.written_in_shard != self.plan[self.shard] {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "shard {} received {} of {} planned regions",
                        self.shard, self.written_in_shard, self.plan[self.shard]
                    ),
                ));
            }
            self.close_shard()?;
        }
        let manifest = ShardManifest {
            p: self.p,
            arity: self.arity,
            generation: 0,
            examples: self.metas.iter().map(|m| m.examples).sum(),
            shards: self.metas,
            overlays: Vec::new(),
        };
        manifest.write_atomic(&self.dir.join(MANIFEST_NAME))?;
        Ok(manifest)
    }
}

/// Appends replacement blocks to an existing sharded layout as one
/// overlay file plus an atomically bumped manifest generation. Blocks
/// must arrive in ascending global-region order; nothing already on
/// disk is touched, so readers of the previous generation keep a
/// consistent snapshot and [`ShardedSource::refresh`] adopts the new
/// one.
pub struct ShardAppender {
    dir: PathBuf,
    manifest: ShardManifest,
    writer: Option<TrainingWriter>,
    file: String,
    regions: Vec<u64>,
    examples_written: u64,
}

impl ShardAppender {
    /// Open `dir`'s manifest and start the overlay file for the next
    /// generation.
    pub fn open(dir: &Path) -> io::Result<ShardAppender> {
        let manifest = ShardManifest::read(&dir.join(MANIFEST_NAME))?;
        let file = overlay_file_name(manifest.generation + 1);
        let writer = TrainingWriter::create(&dir.join(&file), manifest.p, manifest.arity)?;
        Ok(ShardAppender {
            dir: dir.to_path_buf(),
            manifest,
            writer: Some(writer),
            file,
            regions: Vec::new(),
            examples_written: 0,
        })
    }

    /// The generation this append supersedes.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// Write the replacement block of global region `idx`. Indices must
    /// be strictly ascending and in range.
    pub fn write_region(&mut self, idx: usize, block: &RegionBlock) -> io::Result<()> {
        let idx = idx as u64;
        if idx >= self.manifest.total_regions() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("region {idx} outside the sharded layout"),
            ));
        }
        if self.regions.last().is_some_and(|&last| idx <= last) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "overlay regions must be written in ascending order",
            ));
        }
        self.writer
            .as_mut()
            .expect("writer lives until finish")
            .write_region(block)?;
        self.regions.push(idx);
        self.examples_written += block.n() as u64;
        Ok(())
    }

    /// Finish the overlay file, correct the visible example total, and
    /// atomically publish the next-generation manifest. An append that
    /// replaced nothing still bumps the generation (the overlay file is
    /// discarded). Returns the published manifest.
    pub fn finish(mut self) -> io::Result<ShardManifest> {
        let writer = self.writer.take().expect("writer lives until finish");
        writer.finish()?;
        let path = self.dir.join(&self.file);
        let mut manifest = self.manifest;
        if self.regions.is_empty() {
            fs::remove_file(&path)?;
        } else {
            // The example total changes by (new − old) per replaced
            // block; old counts come from the pre-append view, which the
            // still-unchanged manifest on disk resolves.
            let old_view = ShardedSource::open(&self.dir)?;
            let mut old_examples = 0u64;
            for &r in &self.regions {
                old_examples += old_view.read_region(r as usize)?.n() as u64;
            }
            manifest.examples = manifest.examples - old_examples + self.examples_written;
            manifest.overlays.push(OverlayMeta {
                file: self.file.clone(),
                bytes: fs::metadata(&path)?.len(),
                regions: std::mem::take(&mut self.regions),
            });
        }
        manifest.generation += 1;
        manifest.write_atomic(&self.dir.join(MANIFEST_NAME))?;
        Ok(manifest)
    }
}

/// A [`TrainingSource`] over the shards of a manifest: global region
/// index `i` maps to `(shard s, local index i - starts[s])` by binary
/// search over the cumulative shard starts. Reads are counted in this
/// source's own [`IoStats`] (the per-shard inner sources keep their own
/// books), and [`TrainingSource::shard_starts`] exposes the partition so
/// the scan engine can run its two-level shard-aligned merge.
pub struct ShardedSource {
    shards: Vec<Box<dyn TrainingSource>>,
    starts: Vec<usize>,
    total: usize,
    p: usize,
    stats: Arc<IoStats>,
    dir: Option<PathBuf>,
    view: RwLock<Option<ManifestView>>,
    reads: Counter,
}

/// The generation-specific part of a sharded view: the manifest plus
/// the opened overlay files and the global-index redirect table they
/// induce (later overlays shadow earlier ones). Swapped wholesale by
/// [`ShardedSource::refresh`].
struct ManifestView {
    manifest: ShardManifest,
    overlays: Vec<DiskSource>,
    redirect: HashMap<usize, (u32, u32)>,
}

impl ManifestView {
    fn build(dir: &Path, manifest: ShardManifest) -> io::Result<ManifestView> {
        let mut overlays = Vec::with_capacity(manifest.overlays.len());
        let mut redirect = HashMap::new();
        for (o, meta) in manifest.overlays.iter().enumerate() {
            let path = dir.join(&meta.file);
            let actual = fs::metadata(&path)?.len();
            if actual != meta.bytes {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "overlay {} is {actual} bytes, manifest says {}",
                        meta.file, meta.bytes
                    ),
                ));
            }
            let disk = DiskSource::open(&path)?;
            if disk.num_regions() != meta.regions.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "overlay {} holds {} regions, manifest says {}",
                        meta.file,
                        disk.num_regions(),
                        meta.regions.len()
                    ),
                ));
            }
            for (local, &global) in meta.regions.iter().enumerate() {
                redirect.insert(global as usize, (o as u32, local as u32));
            }
            overlays.push(disk);
        }
        Ok(ManifestView {
            manifest,
            overlays,
            redirect,
        })
    }
}

impl ShardedSource {
    /// Open a sharded dataset directory: validate the manifest and open
    /// each shard as a plain [`DiskSource`].
    pub fn open(dir: &Path) -> io::Result<ShardedSource> {
        Self::open_layered(dir, |disk| Box::new(disk))
    }

    /// Like [`ShardedSource::open`], but read counters (and the
    /// `shard/*` counters) are bound to `reg`.
    pub fn open_with_registry(dir: &Path, reg: &Registry) -> io::Result<ShardedSource> {
        let mut src = Self::open_layered(dir, |disk| Box::new(disk))?;
        src.stats = IoStats::in_registry(reg);
        src.reads = reg.counter(names::SHARD_READS);
        reg.counter(names::SHARD_SHARDS_OPENED)
            .add(src.shards.len() as u64);
        Ok(src)
    }

    /// Open a sharded dataset wrapping every shard's [`DiskSource`]
    /// through `layer` — the hook that applies the
    /// `CachedSource`/`FaultySource`/`RetryingSource` stack *per shard*.
    pub fn open_layered(
        dir: &Path,
        mut layer: impl FnMut(DiskSource) -> Box<dyn TrainingSource>,
    ) -> io::Result<ShardedSource> {
        let manifest = ShardManifest::read(&dir.join(MANIFEST_NAME))?;
        let mut shards: Vec<Box<dyn TrainingSource>> = Vec::with_capacity(manifest.shards.len());
        for meta in &manifest.shards {
            let path = dir.join(&meta.file);
            let actual = fs::metadata(&path)?.len();
            if actual != meta.bytes {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {} is {actual} bytes, manifest says {}",
                        meta.file, meta.bytes
                    ),
                ));
            }
            let disk = DiskSource::open(&path)?;
            if disk.num_regions() as u64 != meta.regions {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {} holds {} regions, manifest says {}",
                        meta.file,
                        disk.num_regions(),
                        meta.regions
                    ),
                ));
            }
            shards.push(layer(disk));
        }
        let view = ManifestView::build(dir, manifest)?;
        let mut src = ShardedSource::from_sources(shards)?;
        src.dir = Some(dir.to_path_buf());
        src.view = RwLock::new(Some(view));
        Ok(src)
    }

    /// Assemble a sharded view over arbitrary per-shard sources (their
    /// region ranges concatenate in the given order). All shards must
    /// agree on feature arity.
    pub fn from_sources(shards: Vec<Box<dyn TrainingSource>>) -> io::Result<ShardedSource> {
        if shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded source needs at least one shard",
            ));
        }
        let p = shards[0].feature_arity();
        let mut starts = Vec::with_capacity(shards.len());
        let mut total = 0usize;
        for s in &shards {
            if s.feature_arity() != p {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "shards disagree on feature arity",
                ));
            }
            starts.push(total);
            total += s.num_regions();
        }
        Ok(ShardedSource {
            shards,
            starts,
            total,
            p,
            stats: IoStats::shared(),
            dir: None,
            view: RwLock::new(None),
            reads: Counter::new(),
        })
    }

    fn view(&self) -> std::sync::RwLockReadGuard<'_, Option<ManifestView>> {
        self.view.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The manifest this source currently serves, if it was opened from
    /// a directory (refreshes replace it).
    pub fn manifest(&self) -> Option<ShardManifest> {
        self.view().as_ref().map(|v| v.manifest.clone())
    }

    /// The append generation currently served (0 when opened from
    /// in-memory sources).
    pub fn generation(&self) -> u64 {
        self.view().as_ref().map_or(0, |v| v.manifest.generation)
    }

    /// Re-read the manifest and adopt any newer generation in place:
    /// newly appended overlay files are opened and the redirect table
    /// swapped atomically, while the base shard sources (and whatever
    /// cache/fault layers wrap them) stay untouched. Returns the
    /// generation now served. No-op for in-memory sources and for an
    /// unchanged manifest.
    pub fn refresh(&self) -> io::Result<u64> {
        let Some(dir) = &self.dir else {
            return Ok(self.generation());
        };
        let manifest = ShardManifest::read(&dir.join(MANIFEST_NAME))?;
        if manifest.generation == self.generation() {
            return Ok(manifest.generation);
        }
        if manifest.total_regions() as usize != self.total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "refreshed manifest changed the region count",
            ));
        }
        let view = ManifestView::build(dir, manifest)?;
        let generation = view.manifest.generation;
        *self.view.write().unwrap_or_else(|e| e.into_inner()) = Some(view);
        Ok(generation)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `s` source.
    pub fn shard(&self, s: usize) -> &dyn TrainingSource {
        self.shards[s].as_ref()
    }

    /// Map a global region index to `(shard, local index)`.
    pub fn locate(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.total);
        let s = self.starts.partition_point(|&start| start <= idx) - 1;
        (s, idx - self.starts[s])
    }
}

impl TrainingSource for ShardedSource {
    fn num_regions(&self) -> usize {
        self.total
    }

    fn feature_arity(&self) -> usize {
        self.p
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        let (s, local) = self.locate(idx);
        self.shards[s].region_coords(local)
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        // Appended-over regions resolve through the overlay redirect
        // table; everything else routes to its base shard.
        let block = {
            let view = self.view();
            match view.as_ref().and_then(|v| v.redirect.get(&idx).copied()) {
                Some((o, local)) => {
                    let v = view.as_ref().expect("redirect implies a view");
                    v.overlays[o as usize].read_region(local as usize)?
                }
                None => {
                    drop(view);
                    let (s, local) = self.locate(idx);
                    self.shards[s].read_region(local)?
                }
            }
        };
        self.reads.inc();
        self.stats
            .record_region_read(block.encoded_len() as u64, block.n() as u64);
        Ok(block)
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// This source's own read counters plus every shard's inner
    /// counters, concatenated (same-name entries from different shards
    /// are summed by `MetricsSnapshot` accessors reading the first
    /// match; shard-level detail stays available via
    /// [`ShardedSource::shard`]).
    fn snapshot(&self) -> MetricsSnapshot {
        self.stats.as_ref().into()
    }

    fn total_examples(&self) -> io::Result<u64> {
        if let Some(v) = self.view().as_ref() {
            return Ok(v.manifest.total_examples());
        }
        let mut total = 0;
        for i in 0..self.num_regions() {
            total += self.read_region(i)?.n() as u64;
        }
        Ok(total)
    }

    fn shard_starts(&self) -> Option<Vec<usize>> {
        Some(self.starts.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedSource;
    use crate::source::MemorySource;

    fn block(region: u32, rows: usize) -> RegionBlock {
        let mut b = RegionBlock::new(vec![region], 2);
        for i in 0..rows {
            b.push(i as i64, &[1.0, region as f64 + i as f64], i as f64);
        }
        b
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bw_shard_test").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_sharded(dir: &Path, regions: usize, shards: usize) -> ShardManifest {
        let mut w =
            ShardedWriter::create(dir, 2, 1, even_shard_plan(regions, shards)).unwrap();
        for r in 0..regions {
            w.write_region(&block(r as u32, 1 + r % 3)).unwrap();
        }
        w.finish().unwrap()
    }

    fn base_manifest() -> ShardManifest {
        ShardManifest {
            p: 5,
            arity: 2,
            generation: 0,
            examples: 170,
            shards: vec![
                ShardMeta {
                    file: "shard-0000.bwtd".into(),
                    regions: 10,
                    examples: 100,
                    bytes: 4096,
                },
                ShardMeta {
                    file: "shard-0001.bwtd".into(),
                    regions: 7,
                    examples: 70,
                    bytes: 2048,
                },
            ],
            overlays: Vec::new(),
        }
    }

    #[test]
    fn manifest_roundtrip_and_checksum() {
        let m = base_manifest();
        let bytes = m.encode();
        assert_eq!(ShardManifest::decode(&bytes).unwrap(), m);
        assert_eq!(m.total_regions(), 17);
        assert_eq!(m.total_examples(), 170);
        assert_eq!(m.shard_starts(), vec![0, 10]);
        // Any single-byte corruption is detected.
        for i in [0, 4, 12, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(ShardManifest::decode(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn generation_zero_manifests_stay_version_1() {
        // Pre-append layouts keep the original byte format, so readers
        // that only know version 1 can still open them.
        let m = base_manifest();
        let bytes = m.encode();
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            MANIFEST_VERSION_V1
        );
    }

    #[test]
    fn appended_manifests_roundtrip_as_version_2() {
        let mut m = base_manifest();
        m.generation = 3;
        m.examples = 190;
        m.overlays = vec![
            OverlayMeta {
                file: "overlay-0001.bwtd".into(),
                bytes: 512,
                regions: vec![2, 9, 11],
            },
            OverlayMeta {
                file: "overlay-0003.bwtd".into(),
                bytes: 256,
                regions: vec![9],
            },
        ];
        let bytes = m.encode();
        // A version-1-only reader sees the bumped version field and
        // rejects the layout structurally instead of reading a stale
        // region view.
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            MANIFEST_VERSION
        );
        assert_eq!(ShardManifest::decode(&bytes).unwrap(), m);
        for i in [5, 13, 21, bytes.len() - 9, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x11;
            assert!(ShardManifest::decode(&bad).is_err(), "byte {i}");
        }
        // Unknown future versions are rejected with a version error.
        let mut future = m.encode();
        future[4] = 9;
        let patched = crc32(&future[..future.len() - 4]);
        let n = future.len();
        future[n - 4..].copy_from_slice(&patched.to_le_bytes());
        let err = ShardManifest::decode(&future).unwrap_err();
        assert!(err.to_string().contains("unsupported manifest version"), "{err}");
    }

    #[test]
    fn overlay_region_lists_must_be_ascending_and_in_range() {
        let mut m = base_manifest();
        m.generation = 1;
        m.overlays = vec![OverlayMeta {
            file: "overlay-0001.bwtd".into(),
            bytes: 64,
            regions: vec![5, 5],
        }];
        assert!(ShardManifest::decode(&m.encode()).is_err(), "duplicate index");
        m.overlays[0].regions = vec![3, 17];
        assert!(ShardManifest::decode(&m.encode()).is_err(), "out of range");
    }

    #[test]
    fn even_plan_covers_total() {
        assert_eq!(even_shard_plan(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(even_shard_plan(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(even_shard_plan(0, 2), vec![0, 0]);
        assert_eq!(even_shard_plan(5, 1), vec![5]);
    }

    #[test]
    fn sharded_write_read_matches_flat() {
        let dir = tmp_dir("rw");
        let regions = 11;
        let manifest = write_sharded(&dir, regions, 3);
        assert_eq!(manifest.total_regions(), 11);
        assert_eq!(manifest.shards.len(), 3);

        let src = ShardedSource::open(&dir).unwrap();
        assert_eq!(src.num_regions(), regions);
        assert_eq!(src.num_shards(), 3);
        assert_eq!(src.shard_starts(), Some(vec![0, 4, 8]));
        for r in 0..regions {
            let b = src.read_region(r).unwrap();
            assert_eq!(*b, block(r as u32, 1 + r % 3), "region {r}");
            assert_eq!(src.region_coords(r), &[r as u32]);
        }
        assert_eq!(src.snapshot().regions_read(), regions as u64);
        // Manifest-backed total_examples reads nothing further.
        let before = src.snapshot().regions_read();
        assert_eq!(
            src.total_examples().unwrap(),
            (0..regions).map(|r| 1 + r as u64 % 3).sum::<u64>()
        );
        assert_eq!(src.snapshot().regions_read(), before);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_tampered_manifest_and_resized_shard() {
        let dir = tmp_dir("tamper");
        write_sharded(&dir, 6, 2);
        // Corrupt the manifest.
        let mpath = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&mpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&mpath, &bytes).unwrap();
        assert!(ShardedSource::open(&dir).is_err());

        // Restore, then truncate a shard file.
        write_sharded(&dir, 6, 2);
        let shard0 = dir.join(shard_file_name(0));
        let data = fs::read(&shard0).unwrap();
        fs::write(&shard0, &data[..data.len() - 1]).unwrap();
        let err = ShardedSource::open(&dir).err().expect("resized shard rejected");
        assert!(err.to_string().contains("bytes"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_enforces_the_plan() {
        let dir = tmp_dir("plan");
        let mut w = ShardedWriter::create(&dir, 2, 1, vec![1, 1]).unwrap();
        w.write_region(&block(0, 1)).unwrap();
        w.write_region(&block(1, 1)).unwrap();
        assert!(w.write_region(&block(2, 1)).is_err(), "plan exhausted");

        let mut w = ShardedWriter::create(&dir, 2, 1, vec![2, 1]).unwrap();
        w.write_region(&block(0, 1)).unwrap();
        assert!(w.finish().is_err(), "short write rejected");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_region_shards_get_valid_empty_files() {
        let dir = tmp_dir("zero");
        let mut w = ShardedWriter::create(&dir, 2, 1, vec![0, 2, 0]).unwrap();
        w.write_region(&block(0, 1)).unwrap();
        w.write_region(&block(1, 1)).unwrap();
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.shards.len(), 3);
        assert_eq!(manifest.shards[0].regions, 0);
        assert_eq!(manifest.shards[2].regions, 0);
        let src = ShardedSource::open(&dir).unwrap();
        assert_eq!(src.num_regions(), 2);
        assert_eq!(src.read_region(1).unwrap().region, vec![1]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn layered_open_wraps_each_shard() {
        let dir = tmp_dir("layered");
        write_sharded(&dir, 8, 4);
        let src = ShardedSource::open_layered(&dir, |disk| {
            Box::new(CachedSource::new(disk, 1 << 20))
        })
        .unwrap();
        assert_eq!(src.num_shards(), 4);
        for r in 0..8 {
            src.read_region(r).unwrap();
            src.read_region(r).unwrap();
        }
        // The sharded view counts every routed read; the per-shard
        // caches served half of them without touching disk.
        assert_eq!(src.snapshot().regions_read(), 16);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_sources_concatenates_memory_shards() {
        let a = MemorySource::new(vec![block(0, 1), block(1, 1)]);
        let b = MemorySource::new(vec![block(2, 1)]);
        let src = ShardedSource::from_sources(vec![Box::new(a), Box::new(b)]).unwrap();
        assert_eq!(src.num_regions(), 3);
        assert_eq!(src.locate(0), (0, 0));
        assert_eq!(src.locate(1), (0, 1));
        assert_eq!(src.locate(2), (1, 0));
        assert_eq!(src.find_region(&[2]), Some(2));
        assert_eq!(src.region_coords(2), &[2]);
    }

    #[test]
    fn append_replaces_blocks_under_a_new_generation() {
        let dir = tmp_dir("append");
        write_sharded(&dir, 6, 2);

        let mut app = ShardAppender::open(&dir).unwrap();
        assert_eq!(app.generation(), 0);
        app.write_region(1, &block(100, 4)).unwrap();
        app.write_region(4, &block(200, 5)).unwrap();
        let manifest = app.finish().unwrap();
        assert_eq!(manifest.generation, 1);
        assert_eq!(manifest.overlays.len(), 1);
        assert_eq!(manifest.overlays[0].regions, vec![1, 4]);
        // Old blocks had 1 + r % 3 rows: region 1 had 2, region 4 had 2.
        let old_total: u64 = (0..6).map(|r| 1 + r as u64 % 3).sum();
        assert_eq!(manifest.examples, old_total - 2 - 2 + 4 + 5);

        // A fresh open resolves replaced regions through the overlay and
        // leaves clean regions untouched.
        let src = ShardedSource::open(&dir).unwrap();
        assert_eq!(src.generation(), 1);
        assert_eq!(*src.read_region(1).unwrap(), block(100, 4));
        assert_eq!(*src.read_region(4).unwrap(), block(200, 5));
        assert_eq!(*src.read_region(0).unwrap(), block(0, 1));
        assert_eq!(src.total_examples().unwrap(), manifest.examples);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refresh_adopts_new_generations_in_place() {
        let dir = tmp_dir("refresh");
        write_sharded(&dir, 6, 3);
        let src = ShardedSource::open(&dir).unwrap();
        assert_eq!(*src.read_region(2).unwrap(), block(2, 3));
        assert_eq!(src.refresh().unwrap(), 0, "unchanged manifest is a no-op");

        let mut app = ShardAppender::open(&dir).unwrap();
        app.write_region(2, &block(42, 1)).unwrap();
        app.finish().unwrap();

        // The open source still serves its consistent old snapshot...
        assert_eq!(*src.read_region(2).unwrap(), block(2, 3));
        // ...until it refreshes.
        assert_eq!(src.refresh().unwrap(), 1);
        assert_eq!(*src.read_region(2).unwrap(), block(42, 1));

        // Chained appends: the latest overlay shadows earlier ones.
        let mut app = ShardAppender::open(&dir).unwrap();
        app.write_region(2, &block(43, 2)).unwrap();
        app.write_region(5, &block(44, 2)).unwrap();
        app.finish().unwrap();
        assert_eq!(src.refresh().unwrap(), 2);
        assert_eq!(*src.read_region(2).unwrap(), block(43, 2));
        assert_eq!(*src.read_region(5).unwrap(), block(44, 2));
        assert_eq!(*src.read_region(0).unwrap(), block(0, 1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appender_enforces_order_range_and_empty_appends() {
        let dir = tmp_dir("append_guard");
        write_sharded(&dir, 4, 2);
        let mut app = ShardAppender::open(&dir).unwrap();
        app.write_region(2, &block(9, 1)).unwrap();
        assert!(app.write_region(2, &block(9, 1)).is_err(), "not ascending");
        assert!(app.write_region(1, &block(9, 1)).is_err(), "not ascending");
        assert!(app.write_region(4, &block(9, 1)).is_err(), "out of range");
        drop(app);

        // An append that replaced nothing still bumps the generation and
        // leaves no orphan overlay file behind.
        let app = ShardAppender::open(&dir).unwrap();
        let overlay = dir.join(overlay_file_name(1));
        let manifest = app.finish().unwrap();
        assert_eq!(manifest.generation, 1);
        assert!(manifest.overlays.is_empty());
        assert!(!overlay.exists());
        assert!(ShardedSource::open(&dir).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_bound_source_reports_shard_counters() {
        let dir = tmp_dir("registry");
        write_sharded(&dir, 6, 3);
        let reg = Registry::shared();
        let src = ShardedSource::open_with_registry(&dir, &reg).unwrap();
        for r in 0..6 {
            src.read_region(r).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.regions_read(), 6);
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert_eq!(get(names::SHARD_SHARDS_OPENED), 3);
        assert_eq!(get(names::SHARD_READS), 6);
        fs::remove_dir_all(&dir).ok();
    }
}
