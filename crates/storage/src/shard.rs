//! Sharded on-disk layout for out-of-core training data.
//!
//! A sharded dataset is a directory holding one v2 block file
//! (`shard-NNNN.bwtd`, written by [`crate::TrainingWriter`]) per shard
//! plus a small CRC-32-checksummed manifest (`manifest.bwsm`). Shards
//! partition the global region order into **contiguous ranges**: shard
//! `s` holds regions `[starts[s], starts[s+1])` of the single-file scan
//! order. Concatenating the shards ascending therefore reproduces the
//! exact region sequence a single `.bwtd` file would serve — which is
//! what makes the two-level scan merge (per-shard accumulators merged in
//! ascending shard order) bit-identical to a flat scan.
//!
//! Every shard file is a complete, self-describing training-data file,
//! so the whole PR-4 fault stack applies *per shard*:
//! [`ShardedSource::open_layered`] lets callers wrap each shard's
//! [`DiskSource`] in any combination of
//! `RetryingSource`/`FaultySource`/`CachedSource` before the sharded
//! view is assembled.

use crate::block::RegionBlock;
use crate::crc32::crc32;
use crate::metrics::IoStats;
use crate::reader::DiskSource;
use crate::source::TrainingSource;
use crate::writer::TrainingWriter;
use bellwether_obs::{names, Counter, MetricsSnapshot, Registry};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the manifest inside a sharded dataset directory.
pub const MANIFEST_NAME: &str = "manifest.bwsm";

/// Magic bytes opening a manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"BWSM";

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One shard's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard file name, relative to the manifest's directory.
    pub file: String,
    /// Regions stored in this shard.
    pub regions: u64,
    /// Training examples stored in this shard.
    pub examples: u64,
    /// Size of the shard file in bytes (cheap integrity check at open).
    pub bytes: u64,
}

/// The checksummed description of a sharded dataset: shared feature and
/// region arity plus per-shard entries in ascending global-region order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Feature arity shared by every shard.
    pub p: u32,
    /// Region-coordinate arity shared by every shard.
    pub arity: u32,
    /// Shards, ascending: shard `s` holds the next `shards[s].regions`
    /// regions of the global scan order.
    pub shards: Vec<ShardMeta>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sharded manifest truncated",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl ShardManifest {
    /// Total regions across all shards.
    pub fn total_regions(&self) -> u64 {
        self.shards.iter().map(|s| s.regions).sum()
    }

    /// Total training examples across all shards.
    pub fn total_examples(&self) -> u64 {
        self.shards.iter().map(|s| s.examples).sum()
    }

    /// Global start index of each shard (ascending, first is 0).
    pub fn shard_starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.shards.len());
        let mut acc = 0usize;
        for s in &self.shards {
            starts.push(acc);
            acc += s.regions as usize;
        }
        starts
    }

    /// Serialize: magic, version, arities, shard entries, CRC-32 trailer
    /// over everything preceding it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        put_u32(&mut out, MANIFEST_VERSION);
        put_u32(&mut out, self.p);
        put_u32(&mut out, self.arity);
        put_u32(&mut out, self.shards.len() as u32);
        for s in &self.shards {
            put_u32(&mut out, s.file.len() as u32);
            out.extend_from_slice(s.file.as_bytes());
            put_u64(&mut out, s.regions);
            put_u64(&mut out, s.examples);
            put_u64(&mut out, s.bytes);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode and checksum-validate a manifest.
    pub fn decode(bytes: &[u8]) -> io::Result<ShardManifest> {
        if bytes.len() < 4 + 4 + 4 + 4 + 4 + 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sharded manifest too short",
            ));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(payload) != stored {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sharded manifest checksum mismatch",
            ));
        }
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        if cur.take(4)? != MANIFEST_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a sharded manifest (bad magic)",
            ));
        }
        let version = cur.u32()?;
        if version != MANIFEST_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported manifest version {version}"),
            ));
        }
        let p = cur.u32()?;
        let arity = cur.u32()?;
        let n = cur.u32()? as usize;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let name_len = cur.u32()? as usize;
            let file = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "shard name not utf-8")
                })?
                .to_string();
            let regions = cur.u64()?;
            let examples = cur.u64()?;
            let bytes = cur.u64()?;
            shards.push(ShardMeta {
                file,
                regions,
                examples,
                bytes,
            });
        }
        if cur.pos != payload.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after sharded manifest",
            ));
        }
        Ok(ShardManifest { p, arity, shards })
    }

    /// Write atomically (temp + fsync + rename), same discipline as
    /// [`TrainingWriter::finish`].
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut f = File::create(&tmp)?;
        f.write_all(&self.encode())?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Read and validate the manifest at `path`.
    pub fn read(path: &Path) -> io::Result<ShardManifest> {
        ShardManifest::decode(&fs::read(path)?)
    }
}

/// Canonical shard file name for shard `s`.
pub fn shard_file_name(s: usize) -> String {
    format!("shard-{s:04}.bwtd")
}

/// Split `total` regions into `shards` contiguous even ranges (earlier
/// shards take the remainder), the default partition plan.
pub fn even_shard_plan(total: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let base = total / shards;
    let rem = total % shards;
    (0..shards)
        .map(|s| base + usize::from(s < rem))
        .collect()
}

/// Streams region blocks into per-shard [`TrainingWriter`]s according to
/// a fixed partition plan, then writes the checksummed manifest. Only
/// one shard's writer is open at a time and blocks are encoded as they
/// arrive — nothing is ever materialised beyond the block being written.
pub struct ShardedWriter {
    dir: PathBuf,
    p: u32,
    arity: u32,
    plan: Vec<usize>,
    shard: usize,
    written_in_shard: usize,
    examples_in_shard: u64,
    current: Option<TrainingWriter>,
    metas: Vec<ShardMeta>,
}

impl ShardedWriter {
    /// Create a sharded dataset under `dir` (created if absent). `plan`
    /// gives the number of regions per shard in ascending global order;
    /// [`even_shard_plan`] is the usual choice. Blocks must then arrive
    /// via [`ShardedWriter::write_region`] in global scan order.
    pub fn create(dir: &Path, p: u32, arity: u32, plan: Vec<usize>) -> io::Result<Self> {
        if plan.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "shard plan must name at least one shard",
            ));
        }
        fs::create_dir_all(dir)?;
        Ok(ShardedWriter {
            dir: dir.to_path_buf(),
            p,
            arity,
            plan,
            shard: 0,
            written_in_shard: 0,
            examples_in_shard: 0,
            current: None,
            metas: Vec::new(),
        })
    }

    fn shard_path(&self, s: usize) -> PathBuf {
        self.dir.join(shard_file_name(s))
    }

    /// Close the current shard file and record its manifest entry.
    fn close_shard(&mut self) -> io::Result<()> {
        let path = self.shard_path(self.shard);
        let writer = match self.current.take() {
            Some(w) => w,
            // A zero-region shard still gets a (valid, empty) file so
            // the manifest never points at a missing path.
            None => TrainingWriter::create(&path, self.p, self.arity)?,
        };
        writer.finish()?;
        let bytes = fs::metadata(&path)?.len();
        self.metas.push(ShardMeta {
            file: shard_file_name(self.shard),
            regions: self.written_in_shard as u64,
            examples: self.examples_in_shard,
            bytes,
        });
        self.shard += 1;
        self.written_in_shard = 0;
        self.examples_in_shard = 0;
        Ok(())
    }

    /// Append the next region of the global scan order; shard files
    /// advance automatically at the plan's boundaries.
    pub fn write_region(&mut self, block: &RegionBlock) -> io::Result<()> {
        // Skip over zero-region shards in the plan.
        while self.shard < self.plan.len() && self.written_in_shard == self.plan[self.shard] {
            self.close_shard()?;
        }
        if self.shard >= self.plan.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more regions written than the shard plan holds",
            ));
        }
        if self.current.is_none() {
            self.current = Some(TrainingWriter::create(
                &self.shard_path(self.shard),
                self.p,
                self.arity,
            )?);
        }
        self.current
            .as_mut()
            .expect("writer opened above")
            .write_region(block)?;
        self.written_in_shard += 1;
        self.examples_in_shard += block.n() as u64;
        Ok(())
    }

    /// Regions written so far (across all shards).
    pub fn regions_written(&self) -> usize {
        self.metas.iter().map(|m| m.regions as usize).sum::<usize>() + self.written_in_shard
    }

    /// Finish every remaining shard and write the manifest atomically.
    /// Fails if fewer regions arrived than the plan promised.
    pub fn finish(mut self) -> io::Result<ShardManifest> {
        while self.shard < self.plan.len() {
            if self.written_in_shard != self.plan[self.shard] {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "shard {} received {} of {} planned regions",
                        self.shard, self.written_in_shard, self.plan[self.shard]
                    ),
                ));
            }
            self.close_shard()?;
        }
        let manifest = ShardManifest {
            p: self.p,
            arity: self.arity,
            shards: self.metas,
        };
        manifest.write_atomic(&self.dir.join(MANIFEST_NAME))?;
        Ok(manifest)
    }
}

/// A [`TrainingSource`] over the shards of a manifest: global region
/// index `i` maps to `(shard s, local index i - starts[s])` by binary
/// search over the cumulative shard starts. Reads are counted in this
/// source's own [`IoStats`] (the per-shard inner sources keep their own
/// books), and [`TrainingSource::shard_starts`] exposes the partition so
/// the scan engine can run its two-level shard-aligned merge.
pub struct ShardedSource {
    shards: Vec<Box<dyn TrainingSource>>,
    starts: Vec<usize>,
    total: usize,
    p: usize,
    stats: Arc<IoStats>,
    manifest: Option<ShardManifest>,
    reads: Counter,
}

impl ShardedSource {
    /// Open a sharded dataset directory: validate the manifest and open
    /// each shard as a plain [`DiskSource`].
    pub fn open(dir: &Path) -> io::Result<ShardedSource> {
        Self::open_layered(dir, |disk| Box::new(disk))
    }

    /// Like [`ShardedSource::open`], but read counters (and the
    /// `shard/*` counters) are bound to `reg`.
    pub fn open_with_registry(dir: &Path, reg: &Registry) -> io::Result<ShardedSource> {
        let mut src = Self::open_layered(dir, |disk| Box::new(disk))?;
        src.stats = IoStats::in_registry(reg);
        src.reads = reg.counter(names::SHARD_READS);
        reg.counter(names::SHARD_SHARDS_OPENED)
            .add(src.shards.len() as u64);
        Ok(src)
    }

    /// Open a sharded dataset wrapping every shard's [`DiskSource`]
    /// through `layer` — the hook that applies the
    /// `CachedSource`/`FaultySource`/`RetryingSource` stack *per shard*.
    pub fn open_layered(
        dir: &Path,
        mut layer: impl FnMut(DiskSource) -> Box<dyn TrainingSource>,
    ) -> io::Result<ShardedSource> {
        let manifest = ShardManifest::read(&dir.join(MANIFEST_NAME))?;
        let mut shards: Vec<Box<dyn TrainingSource>> = Vec::with_capacity(manifest.shards.len());
        for meta in &manifest.shards {
            let path = dir.join(&meta.file);
            let actual = fs::metadata(&path)?.len();
            if actual != meta.bytes {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {} is {actual} bytes, manifest says {}",
                        meta.file, meta.bytes
                    ),
                ));
            }
            let disk = DiskSource::open(&path)?;
            if disk.num_regions() as u64 != meta.regions {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {} holds {} regions, manifest says {}",
                        meta.file,
                        disk.num_regions(),
                        meta.regions
                    ),
                ));
            }
            shards.push(layer(disk));
        }
        let mut src = ShardedSource::from_sources(shards)?;
        src.manifest = Some(manifest);
        Ok(src)
    }

    /// Assemble a sharded view over arbitrary per-shard sources (their
    /// region ranges concatenate in the given order). All shards must
    /// agree on feature arity.
    pub fn from_sources(shards: Vec<Box<dyn TrainingSource>>) -> io::Result<ShardedSource> {
        if shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded source needs at least one shard",
            ));
        }
        let p = shards[0].feature_arity();
        let mut starts = Vec::with_capacity(shards.len());
        let mut total = 0usize;
        for s in &shards {
            if s.feature_arity() != p {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "shards disagree on feature arity",
                ));
            }
            starts.push(total);
            total += s.num_regions();
        }
        Ok(ShardedSource {
            shards,
            starts,
            total,
            p,
            stats: IoStats::shared(),
            manifest: None,
            reads: Counter::new(),
        })
    }

    /// The manifest this source was opened from, if any.
    pub fn manifest(&self) -> Option<&ShardManifest> {
        self.manifest.as_ref()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `s` source.
    pub fn shard(&self, s: usize) -> &dyn TrainingSource {
        self.shards[s].as_ref()
    }

    /// Map a global region index to `(shard, local index)`.
    pub fn locate(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.total);
        let s = self.starts.partition_point(|&start| start <= idx) - 1;
        (s, idx - self.starts[s])
    }
}

impl TrainingSource for ShardedSource {
    fn num_regions(&self) -> usize {
        self.total
    }

    fn feature_arity(&self) -> usize {
        self.p
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        let (s, local) = self.locate(idx);
        self.shards[s].region_coords(local)
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        let (s, local) = self.locate(idx);
        let block = self.shards[s].read_region(local)?;
        self.reads.inc();
        self.stats
            .record_region_read(block.encoded_len() as u64, block.n() as u64);
        Ok(block)
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// This source's own read counters plus every shard's inner
    /// counters, concatenated (same-name entries from different shards
    /// are summed by `MetricsSnapshot` accessors reading the first
    /// match; shard-level detail stays available via
    /// [`ShardedSource::shard`]).
    fn snapshot(&self) -> MetricsSnapshot {
        self.stats.as_ref().into()
    }

    fn total_examples(&self) -> io::Result<u64> {
        match &self.manifest {
            Some(m) => Ok(m.total_examples()),
            None => {
                let mut total = 0;
                for i in 0..self.num_regions() {
                    total += self.read_region(i)?.n() as u64;
                }
                Ok(total)
            }
        }
    }

    fn shard_starts(&self) -> Option<Vec<usize>> {
        Some(self.starts.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedSource;
    use crate::source::MemorySource;

    fn block(region: u32, rows: usize) -> RegionBlock {
        let mut b = RegionBlock::new(vec![region], 2);
        for i in 0..rows {
            b.push(i as i64, &[1.0, region as f64 + i as f64], i as f64);
        }
        b
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bw_shard_test").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_sharded(dir: &Path, regions: usize, shards: usize) -> ShardManifest {
        let mut w =
            ShardedWriter::create(dir, 2, 1, even_shard_plan(regions, shards)).unwrap();
        for r in 0..regions {
            w.write_region(&block(r as u32, 1 + r % 3)).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn manifest_roundtrip_and_checksum() {
        let m = ShardManifest {
            p: 5,
            arity: 2,
            shards: vec![
                ShardMeta {
                    file: "shard-0000.bwtd".into(),
                    regions: 10,
                    examples: 100,
                    bytes: 4096,
                },
                ShardMeta {
                    file: "shard-0001.bwtd".into(),
                    regions: 7,
                    examples: 70,
                    bytes: 2048,
                },
            ],
        };
        let bytes = m.encode();
        assert_eq!(ShardManifest::decode(&bytes).unwrap(), m);
        assert_eq!(m.total_regions(), 17);
        assert_eq!(m.total_examples(), 170);
        assert_eq!(m.shard_starts(), vec![0, 10]);
        // Any single-byte corruption is detected.
        for i in [0, 4, 12, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(ShardManifest::decode(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn even_plan_covers_total() {
        assert_eq!(even_shard_plan(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(even_shard_plan(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(even_shard_plan(0, 2), vec![0, 0]);
        assert_eq!(even_shard_plan(5, 1), vec![5]);
    }

    #[test]
    fn sharded_write_read_matches_flat() {
        let dir = tmp_dir("rw");
        let regions = 11;
        let manifest = write_sharded(&dir, regions, 3);
        assert_eq!(manifest.total_regions(), 11);
        assert_eq!(manifest.shards.len(), 3);

        let src = ShardedSource::open(&dir).unwrap();
        assert_eq!(src.num_regions(), regions);
        assert_eq!(src.num_shards(), 3);
        assert_eq!(src.shard_starts(), Some(vec![0, 4, 8]));
        for r in 0..regions {
            let b = src.read_region(r).unwrap();
            assert_eq!(*b, block(r as u32, 1 + r % 3), "region {r}");
            assert_eq!(src.region_coords(r), &[r as u32]);
        }
        assert_eq!(src.snapshot().regions_read(), regions as u64);
        // Manifest-backed total_examples reads nothing further.
        let before = src.snapshot().regions_read();
        assert_eq!(
            src.total_examples().unwrap(),
            (0..regions).map(|r| 1 + r as u64 % 3).sum::<u64>()
        );
        assert_eq!(src.snapshot().regions_read(), before);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_tampered_manifest_and_resized_shard() {
        let dir = tmp_dir("tamper");
        write_sharded(&dir, 6, 2);
        // Corrupt the manifest.
        let mpath = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&mpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&mpath, &bytes).unwrap();
        assert!(ShardedSource::open(&dir).is_err());

        // Restore, then truncate a shard file.
        write_sharded(&dir, 6, 2);
        let shard0 = dir.join(shard_file_name(0));
        let data = fs::read(&shard0).unwrap();
        fs::write(&shard0, &data[..data.len() - 1]).unwrap();
        let err = ShardedSource::open(&dir).err().expect("resized shard rejected");
        assert!(err.to_string().contains("bytes"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_enforces_the_plan() {
        let dir = tmp_dir("plan");
        let mut w = ShardedWriter::create(&dir, 2, 1, vec![1, 1]).unwrap();
        w.write_region(&block(0, 1)).unwrap();
        w.write_region(&block(1, 1)).unwrap();
        assert!(w.write_region(&block(2, 1)).is_err(), "plan exhausted");

        let mut w = ShardedWriter::create(&dir, 2, 1, vec![2, 1]).unwrap();
        w.write_region(&block(0, 1)).unwrap();
        assert!(w.finish().is_err(), "short write rejected");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_region_shards_get_valid_empty_files() {
        let dir = tmp_dir("zero");
        let mut w = ShardedWriter::create(&dir, 2, 1, vec![0, 2, 0]).unwrap();
        w.write_region(&block(0, 1)).unwrap();
        w.write_region(&block(1, 1)).unwrap();
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.shards.len(), 3);
        assert_eq!(manifest.shards[0].regions, 0);
        assert_eq!(manifest.shards[2].regions, 0);
        let src = ShardedSource::open(&dir).unwrap();
        assert_eq!(src.num_regions(), 2);
        assert_eq!(src.read_region(1).unwrap().region, vec![1]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn layered_open_wraps_each_shard() {
        let dir = tmp_dir("layered");
        write_sharded(&dir, 8, 4);
        let src = ShardedSource::open_layered(&dir, |disk| {
            Box::new(CachedSource::new(disk, 1 << 20))
        })
        .unwrap();
        assert_eq!(src.num_shards(), 4);
        for r in 0..8 {
            src.read_region(r).unwrap();
            src.read_region(r).unwrap();
        }
        // The sharded view counts every routed read; the per-shard
        // caches served half of them without touching disk.
        assert_eq!(src.snapshot().regions_read(), 16);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_sources_concatenates_memory_shards() {
        let a = MemorySource::new(vec![block(0, 1), block(1, 1)]);
        let b = MemorySource::new(vec![block(2, 1)]);
        let src = ShardedSource::from_sources(vec![Box::new(a), Box::new(b)]).unwrap();
        assert_eq!(src.num_regions(), 3);
        assert_eq!(src.locate(0), (0, 0));
        assert_eq!(src.locate(1), (0, 1));
        assert_eq!(src.locate(2), (1, 0));
        assert_eq!(src.find_region(&[2]), Some(2));
        assert_eq!(src.region_coords(2), &[2]);
    }

    #[test]
    fn registry_bound_source_reports_shard_counters() {
        let dir = tmp_dir("registry");
        write_sharded(&dir, 6, 3);
        let reg = Registry::shared();
        let src = ShardedSource::open_with_registry(&dir, &reg).unwrap();
        for r in 0..6 {
            src.read_region(r).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.regions_read(), 6);
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert_eq!(get(names::SHARD_SHARDS_OPENED), 3);
        assert_eq!(get(names::SHARD_READS), 6);
        fs::remove_dir_all(&dir).ok();
    }
}
