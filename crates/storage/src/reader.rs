//! On-disk training source: index-loaded random and sequential reads.
//!
//! Every `read_region` performs a positioned read from the file — no
//! caching layer — so the efficiency experiments of Figure 11(a), where
//! "each time [an algorithm] needs the training data from a region, it
//! always reads the data from disk", are honest: the naive algorithms'
//! `l·m` region requests translate into `l·m` actual file reads.

use crate::block::RegionBlock;
use crate::format::{
    decode_block_versioned, decode_footer, decode_header, decode_index, Header, IndexEntry,
    FOOTER_LEN, HEADER_LEN,
};
use crate::metrics::IoStats;
use crate::source::TrainingSource;
use bellwether_obs::{span, Registry};
use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

/// Reader over a file produced by [`crate::writer::TrainingWriter`].
pub struct DiskSource {
    file: File,
    header: Header,
    index: Vec<IndexEntry>,
    by_coords: HashMap<Vec<u32>, usize>,
    stats: Arc<IoStats>,
    registry: Option<Arc<Registry>>,
}

impl DiskSource {
    /// Open and validate `path`, loading the region index.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too small",
            ));
        }

        let mut header_buf = vec![0u8; HEADER_LEN];
        file.read_exact_at(&mut header_buf, 0)?;
        let header = decode_header(&header_buf)?;

        let mut footer_buf = vec![0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer_buf, file_len - FOOTER_LEN as u64)?;
        let (index_offset, count) = decode_footer(&footer_buf)?;

        let index_len = file_len - FOOTER_LEN as u64 - index_offset;
        let mut index_buf = vec![0u8; index_len as usize];
        file.read_exact_at(&mut index_buf, index_offset)?;
        let index = decode_index(&index_buf, count, header.arity)?;

        let by_coords = index
            .iter()
            .enumerate()
            .map(|(i, e)| (e.coords.clone(), i))
            .collect();
        Ok(DiskSource {
            file,
            header,
            index,
            by_coords,
            stats: IoStats::shared(),
            registry: None,
        })
    }

    /// Like [`DiskSource::open`], but IO counters are bound to the
    /// canonical `storage/*` entries of `reg` and each region read is
    /// timed under the `storage/read_region` span. Disk reads are
    /// IO-dominated, so the per-read span is an acceptable cost here
    /// (the in-memory source records counters only).
    pub fn open_with_registry(path: &Path, reg: &Arc<Registry>) -> io::Result<Self> {
        let mut src = DiskSource::open(path)?;
        src.stats = IoStats::in_registry(reg);
        src.registry = Some(Arc::clone(reg));
        Ok(src)
    }

    /// Size of the stored data region in bytes (excluding index/footer).
    pub fn data_bytes(&self) -> u64 {
        self.index.iter().map(|e| e.len).sum()
    }

    /// Format version the file's blocks are encoded with.
    pub fn format_version(&self) -> u32 {
        self.header.version
    }
}

impl TrainingSource for DiskSource {
    fn num_regions(&self) -> usize {
        self.index.len()
    }

    fn feature_arity(&self) -> usize {
        self.header.p as usize
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        &self.index[idx].coords
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        let _timer = self
            .registry
            .as_ref()
            .map(|reg| span!(reg.as_ref(), "storage/read_region"));
        let entry = &self.index[idx];
        let mut buf = vec![0u8; entry.len as usize];
        self.file.read_exact_at(&mut buf, entry.offset)?;
        let block = decode_block_versioned(&buf, self.header.version).inspect_err(|_| {
            // Bytes were read but did not validate (checksum mismatch or
            // structural garbage): account for it so operators can see
            // rot even when callers retry or skip.
            self.stats.record_corrupt_block();
        })?;
        self.stats
            .record_region_read(entry.len, block.n() as u64);
        Ok(Arc::new(block))
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn find_region(&self, coords: &[u32]) -> Option<usize> {
        self.by_coords.get(coords).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TrainingWriter;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("bw_reader_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_blocks() -> Vec<RegionBlock> {
        (0..5u32)
            .map(|r| {
                let mut b = RegionBlock::new(vec![r, r + 10], 3);
                for i in 0..(r as i64 + 1) {
                    b.push(i, &[r as f64, i as f64, 0.5], (r as i64 + i) as f64);
                }
                b
            })
            .collect()
    }

    #[test]
    fn write_then_read_round_trip() {
        let path = tmpfile("rt.bwtd");
        let blocks = sample_blocks();
        let mut w = TrainingWriter::create(&path, 3, 2).unwrap();
        for b in &blocks {
            w.write_region(b).unwrap();
        }
        w.finish().unwrap();

        let src = DiskSource::open(&path).unwrap();
        assert_eq!(src.num_regions(), 5);
        assert_eq!(src.feature_arity(), 3);
        for (i, expect) in blocks.iter().enumerate() {
            assert_eq!(src.region_coords(i), expect.region.as_slice());
            let got = src.read_region(i).unwrap();
            assert_eq!(got.as_ref(), expect);
        }
        assert_eq!(src.snapshot().regions_read(), 5);
        assert_eq!(src.total_examples().unwrap(), 1 + 2 + 3 + 4 + 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn registry_bound_disk_source_counts_and_times_reads() {
        let path = tmpfile("reg.bwtd");
        let blocks = sample_blocks();
        let mut w = TrainingWriter::create(&path, 3, 2).unwrap();
        for b in &blocks {
            w.write_region(b).unwrap();
        }
        w.finish().unwrap();

        let reg = Registry::shared();
        let src = DiskSource::open_with_registry(&path, &reg).unwrap();
        for i in 0..src.num_regions() {
            src.read_region(i).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.regions_read(), 5);
        assert_eq!(snap.examples_read(), 15);
        let span = snap.span("storage/read_region").expect("read span recorded");
        assert_eq!(span.calls, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_access_out_of_order() {
        let path = tmpfile("rand.bwtd");
        let blocks = sample_blocks();
        let mut w = TrainingWriter::create(&path, 3, 2).unwrap();
        for b in &blocks {
            w.write_region(b).unwrap();
        }
        w.finish().unwrap();
        let src = DiskSource::open(&path).unwrap();
        assert_eq!(*src.read_region(3).unwrap(), blocks[3]);
        assert_eq!(*src.read_region(0).unwrap(), blocks[0]);
        assert_eq!(src.find_region(&[2, 12]), Some(2));
        assert_eq!(src.find_region(&[9, 9]), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let path = tmpfile("corrupt.bwtd");
        std::fs::write(&path, b"this is not a training file at all....").unwrap();
        assert!(DiskSource::open(&path).is_err());
        std::fs::write(&path, b"x").unwrap();
        assert!(DiskSource::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reads_v1_files_without_checksums() {
        let path = tmpfile("v1.bwtd");
        let blocks = sample_blocks();
        let mut w =
            TrainingWriter::create_versioned(&path, 3, 2, crate::format::VERSION_V1).unwrap();
        for b in &blocks {
            w.write_region(b).unwrap();
        }
        w.finish().unwrap();
        let src = DiskSource::open(&path).unwrap();
        assert_eq!(src.format_version(), crate::format::VERSION_V1);
        for (i, expect) in blocks.iter().enumerate() {
            assert_eq!(src.read_region(i).unwrap().as_ref(), expect);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_on_disk_surfaces_as_corrupt_block() {
        let path = tmpfile("rot.bwtd");
        let blocks = sample_blocks();
        let mut w = TrainingWriter::create(&path, 3, 2).unwrap();
        for b in &blocks {
            w.write_region(b).unwrap();
        }
        w.finish().unwrap();

        // Rot one byte in the middle of region 2's block.
        let src = DiskSource::open(&path).unwrap();
        assert_eq!(src.format_version(), crate::format::VERSION_V2);
        let mut bytes = std::fs::read(&path).unwrap();
        let entry = src.index[2].clone();
        bytes[(entry.offset + entry.len / 2) as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let src = DiskSource::open(&path).unwrap();
        let err = src.read_region(2).expect_err("corruption undetected");
        assert!(crate::format::is_corrupt(&err), "{err}");
        // Healthy regions still read fine; the corrupt counter ticked.
        assert_eq!(*src.read_region(0).unwrap(), blocks[0]);
        assert_eq!(src.snapshot().corrupt_blocks(), 1);
        assert_eq!(src.snapshot().regions_read(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_with_zero_regions() {
        let path = tmpfile("empty.bwtd");
        let w = TrainingWriter::create(&path, 4, 1).unwrap();
        w.finish().unwrap();
        let src = DiskSource::open(&path).unwrap();
        assert_eq!(src.num_regions(), 0);
        assert_eq!(src.data_bytes(), 0);
        std::fs::remove_file(&path).ok();
    }
}
