//! The unit of training-data storage: one region's training set.


/// The training set of one feasible region: for each item with data in
/// the region, its query-generated feature vector and target value.
///
/// All regions of one entire-training-data store share the feature arity
/// `p` (the same feature queries are issued per region). Coordinates are
/// the region's dimension-value ids, opaque to this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionBlock {
    /// Region coordinates (one dimension-value id per dimension).
    pub region: Vec<u32>,
    /// Item ids, one per example.
    pub item_ids: Vec<i64>,
    /// Row-major `n × p` feature values.
    pub features: Vec<f64>,
    /// Targets, one per example.
    pub targets: Vec<f64>,
    /// Feature arity `p`.
    pub p: u32,
}

impl RegionBlock {
    /// Empty block for a region.
    pub fn new(region: Vec<u32>, p: u32) -> Self {
        RegionBlock {
            region,
            item_ids: Vec::new(),
            features: Vec::new(),
            targets: Vec::new(),
            p,
        }
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.item_ids.len()
    }

    /// True if the block holds no examples.
    pub fn is_empty(&self) -> bool {
        self.item_ids.is_empty()
    }

    /// Append one example. Panics if `x.len() != p`.
    pub fn push(&mut self, item: i64, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.p as usize, "feature arity mismatch");
        self.item_ids.push(item);
        self.features.extend_from_slice(x);
        self.targets.push(y);
    }

    /// Feature row of example `i`.
    pub fn x(&self, i: usize) -> &[f64] {
        let p = self.p as usize;
        &self.features[i * p..(i + 1) * p]
    }

    /// Target of example `i`.
    pub fn y(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// Serialized size in bytes (used for IO accounting).
    pub fn encoded_len(&self) -> usize {
        // header: region-arity u32 + coords + n u64 + p u32, then payload
        4 + self.region.len() * 4
            + 8
            + 4
            + self.item_ids.len() * 8
            + self.features.len() * 8
            + self.targets.len() * 8
    }

    /// Iterate `(item, x, y)` examples.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &[f64], f64)> + '_ {
        (0..self.n()).map(move |i| (self.item_ids[i], self.x(i), self.y(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut b = RegionBlock::new(vec![1, 2], 2);
        b.push(7, &[1.0, 2.0], 3.0);
        b.push(8, &[4.0, 5.0], 6.0);
        assert_eq!(b.n(), 2);
        assert_eq!(b.x(1), &[4.0, 5.0]);
        assert_eq!(b.y(0), 3.0);
        let rows: Vec<_> = b.iter().collect();
        assert_eq!(rows[0], (7, &[1.0, 2.0][..], 3.0));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut b = RegionBlock::new(vec![0], 3);
        b.push(1, &[1.0], 0.0);
    }

    #[test]
    fn encoded_len_counts_payload() {
        let mut b = RegionBlock::new(vec![0, 1], 1);
        let empty = b.encoded_len();
        b.push(1, &[2.0], 3.0);
        assert_eq!(b.encoded_len(), empty + 8 + 8 + 8);
    }
}
