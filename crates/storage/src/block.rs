//! The unit of training-data storage: one region's training set.

/// The training set of one feasible region: for each item with data in
/// the region, its query-generated feature vector and target value.
///
/// All regions of one entire-training-data store share the feature arity
/// `p` (the same feature queries are issued per region). Coordinates are
/// the region's dimension-value ids, opaque to this crate.
///
/// # In-memory layout
///
/// Decoded blocks hold features in *structure-of-arrays* form: one
/// contiguous `f64` lane per feature column, plus the target and item-id
/// lanes. The accumulation kernels ([`bellwether-linreg`]'s
/// `RegSuffStats::add_rows` and the cube phase-1 scan) stream whole
/// columns instead of strided rows, which is what lets them vectorize.
/// The *on-disk* encoding is unchanged row-major (see
/// [`crate::format`]); the transpose happens at encode/decode time.
#[derive(Debug, Clone)]
pub struct RegionBlock {
    /// Region coordinates (one dimension-value id per dimension).
    pub region: Vec<u32>,
    /// Item ids, one per example.
    pub item_ids: Vec<i64>,
    /// Targets, one per example.
    pub targets: Vec<f64>,
    /// Feature arity `p`.
    pub p: u32,
    /// Feature columns: `p` lanes of `n` values each. Lazily
    /// initialised — an empty block may hold no lanes at all (decoding
    /// `n = 0` must not allocate `p` empty vectors for a garbage `p`),
    /// so readers go through [`RegionBlock::col`]/[`RegionBlock::cols`].
    cols: Vec<Vec<f64>>,
}

impl RegionBlock {
    /// Empty block for a region.
    pub fn new(region: Vec<u32>, p: u32) -> Self {
        RegionBlock {
            region,
            item_ids: Vec::new(),
            targets: Vec::new(),
            p,
            cols: Vec::new(),
        }
    }

    /// Assemble a block directly from feature columns (the decode path;
    /// also handy for tests). `cols` must either be empty (only legal
    /// when there are no examples) or hold exactly `p` lanes of
    /// `item_ids.len()` values each.
    pub fn from_columns(
        region: Vec<u32>,
        p: u32,
        item_ids: Vec<i64>,
        cols: Vec<Vec<f64>>,
        targets: Vec<f64>,
    ) -> Self {
        assert_eq!(item_ids.len(), targets.len(), "targets per example");
        if cols.len() == p as usize {
            for c in &cols {
                assert_eq!(c.len(), item_ids.len(), "ragged feature lane");
            }
        } else {
            assert!(
                cols.is_empty() && item_ids.is_empty(),
                "examples need feature lanes"
            );
        }
        RegionBlock {
            region,
            item_ids,
            targets,
            p,
            cols,
        }
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.item_ids.len()
    }

    /// True if the block holds no examples.
    pub fn is_empty(&self) -> bool {
        self.item_ids.is_empty()
    }

    /// Append one example. Panics if `x.len() != p`.
    pub fn push(&mut self, item: i64, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.p as usize, "feature arity mismatch");
        if self.cols.len() != self.p as usize {
            self.cols.resize_with(self.p as usize, Vec::new);
        }
        self.item_ids.push(item);
        for (col, &v) in self.cols.iter_mut().zip(x) {
            col.push(v);
        }
        self.targets.push(y);
    }

    /// Feature column `j` (all `n` values of feature `j`). Empty when
    /// the block holds no examples.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.p as usize, "feature index out of range");
        self.cols.get(j).map_or(&[][..], Vec::as_slice)
    }

    /// All feature columns. May be empty (rather than `p` empty lanes)
    /// when the block holds no examples.
    pub fn cols(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Feature `j` of example `i`.
    pub fn feature(&self, i: usize, j: usize) -> f64 {
        self.cols[j][i]
    }

    /// Feature row of example `i`, gathered into a fresh vector (a
    /// strided read across all lanes — convenience for tests and
    /// row-oriented call sites, not for hot loops).
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.n(), "example index out of range");
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Target of example `i`.
    pub fn y(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// Serialized size in bytes (used for IO accounting). Delegates to
    /// the format module, which owns the header/payload arithmetic.
    pub fn encoded_len(&self) -> usize {
        crate::format::encoded_payload_len(self.region.len(), self.n(), self.p as usize)
    }
}

impl PartialEq for RegionBlock {
    fn eq(&self, other: &Self) -> bool {
        // `cols` is lazily initialised, so an empty block may hold
        // either zero lanes or `p` empty lanes; both compare equal.
        self.region == other.region
            && self.p == other.p
            && self.item_ids == other.item_ids
            && self.targets == other.targets
            && (self.is_empty() || self.cols == other.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut b = RegionBlock::new(vec![1, 2], 2);
        b.push(7, &[1.0, 2.0], 3.0);
        b.push(8, &[4.0, 5.0], 6.0);
        assert_eq!(b.n(), 2);
        assert_eq!(b.row(1), &[4.0, 5.0]);
        assert_eq!(b.y(0), 3.0);
        assert_eq!(b.col(0), &[1.0, 4.0]);
        assert_eq!(b.col(1), &[2.0, 5.0]);
        assert_eq!(b.feature(1, 0), 4.0);
        assert_eq!(b.cols().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut b = RegionBlock::new(vec![0], 3);
        b.push(1, &[1.0], 0.0);
    }

    #[test]
    fn encoded_len_counts_payload() {
        let mut b = RegionBlock::new(vec![0, 1], 1);
        let empty = b.encoded_len();
        b.push(1, &[2.0], 3.0);
        assert_eq!(b.encoded_len(), empty + 8 + 8 + 8);
    }

    #[test]
    fn empty_blocks_compare_equal_regardless_of_lane_representation() {
        let fresh = RegionBlock::new(vec![1], 3);
        let lanes =
            RegionBlock::from_columns(vec![1], 3, vec![], vec![vec![], vec![], vec![]], vec![]);
        assert_eq!(fresh, lanes);
        assert_eq!(fresh.col(2), &[] as &[f64]);
    }

    #[test]
    fn from_columns_matches_pushes() {
        let mut pushed = RegionBlock::new(vec![9], 2);
        pushed.push(1, &[1.0, 2.0], 5.0);
        pushed.push(2, &[3.0, 4.0], 6.0);
        let built = RegionBlock::from_columns(
            vec![9],
            2,
            vec![1, 2],
            vec![vec![1.0, 3.0], vec![2.0, 4.0]],
            vec![5.0, 6.0],
        );
        assert_eq!(pushed, built);
    }

    #[test]
    #[should_panic(expected = "ragged feature lane")]
    fn from_columns_rejects_ragged_lanes() {
        RegionBlock::from_columns(vec![0], 2, vec![1], vec![vec![1.0], vec![]], vec![2.0]);
    }
}
