//! The `TrainingSource` abstraction: the *entire training data* (the
//! training sets of all feasible regions) behind one trait, with an
//! in-memory implementation for quality experiments and an on-disk one
//! (see [`crate::reader`]) for the efficiency experiments.

use crate::block::RegionBlock;
use crate::metrics::IoStats;
use bellwether_obs::{MetricsSnapshot, Registry};
use std::io;
use std::sync::Arc;

/// A store of per-region training sets that the scan algorithms read.
///
/// Region order is fixed at construction; "one scan over the entire
/// training data" = `read_region(0..num_regions())` in order. Every read
/// is counted in [`TrainingSource::stats`], so tests can verify the
/// paper's scan-count lemmas.
pub trait TrainingSource: Send + Sync {
    /// Number of stored regions.
    fn num_regions(&self) -> usize;

    /// Feature arity shared by all regions.
    fn feature_arity(&self) -> usize;

    /// Coordinates of region `idx`.
    fn region_coords(&self, idx: usize) -> &[u32];

    /// Read (and account) the training set of region `idx`.
    ///
    /// Returns a shared handle so sources that already hold decoded
    /// blocks (the in-memory source, the decoded-block cache) can serve
    /// reads as a refcount bump instead of copying row data; `Arc<..>`
    /// derefs to [`RegionBlock`], so call sites read it like a plain
    /// block.
    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>>;

    /// Shared IO counters.
    fn stats(&self) -> &Arc<IoStats>;

    /// Point-in-time copy of this source's IO counters, addressed by the
    /// canonical names in `bellwether_obs::names` — the one way to read
    /// scan counts.
    fn snapshot(&self) -> MetricsSnapshot {
        self.stats().as_ref().into()
    }

    /// Index of the region with the given coordinates, if stored.
    fn find_region(&self, coords: &[u32]) -> Option<usize> {
        (0..self.num_regions()).find(|&i| self.region_coords(i) == coords)
    }

    /// Total example count across regions (reads nothing if the
    /// implementation caches it; the default scans).
    fn total_examples(&self) -> io::Result<u64> {
        let mut total = 0;
        for i in 0..self.num_regions() {
            total += self.read_region(i)?.n() as u64;
        }
        Ok(total)
    }

    /// Global start index of each contiguous shard of the region order,
    /// if this source is shard-partitioned (`None` for flat sources).
    /// When present: non-empty, `starts[0] == 0`, strictly ascending
    /// entries below `num_regions()`. The scan engine aligns its
    /// two-level merge to these boundaries so per-shard accumulators
    /// merge in ascending shard order — wrappers must forward this so a
    /// cached/faulty/retrying sharded source still schedules shard-wise.
    fn shard_starts(&self) -> Option<Vec<usize>> {
        None
    }
}

/// In-memory training source. Reads are logical (shared handles to the
/// stored blocks — no row data is copied) but still counted, so
/// algorithm scan counts are comparable with the disk source.
#[derive(Debug)]
pub struct MemorySource {
    blocks: Vec<Arc<RegionBlock>>,
    p: usize,
    stats: Arc<IoStats>,
}

impl MemorySource {
    /// Wrap pre-built region blocks (all must share one feature arity).
    pub fn new(blocks: Vec<RegionBlock>) -> Self {
        MemorySource::from_shared(blocks.into_iter().map(Arc::new).collect())
    }

    /// Wrap already-shared region blocks without re-allocating them —
    /// the zero-copy path for sources derived from another source's
    /// blocks (e.g. budget-filtered bench subsets).
    pub fn from_shared(blocks: Vec<Arc<RegionBlock>>) -> Self {
        let p = blocks.first().map_or(0, |b| b.p as usize);
        for b in &blocks {
            assert_eq!(b.p as usize, p, "inconsistent feature arity");
        }
        MemorySource {
            blocks,
            p,
            stats: IoStats::shared(),
        }
    }

    /// Like [`MemorySource::new`], but IO counters are bound to the
    /// canonical `storage/*` entries of `reg`, so every read shows up in
    /// `reg.snapshot()` alongside the rest of the pipeline's metrics.
    pub fn with_registry(blocks: Vec<RegionBlock>, reg: &Registry) -> Self {
        let mut src = MemorySource::new(blocks);
        src.stats = IoStats::in_registry(reg);
        src
    }

    /// Direct (uncounted) access for construction-time bookkeeping.
    pub fn blocks(&self) -> &[Arc<RegionBlock>] {
        &self.blocks
    }
}

impl TrainingSource for MemorySource {
    fn num_regions(&self) -> usize {
        self.blocks.len()
    }

    fn feature_arity(&self) -> usize {
        self.p
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        &self.blocks[idx].region
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        let b = Arc::clone(&self.blocks[idx]);
        self.stats
            .record_region_read(b.encoded_len() as u64, b.n() as u64);
        Ok(b)
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> Vec<RegionBlock> {
        let mut a = RegionBlock::new(vec![0, 0], 2);
        a.push(1, &[1.0, 2.0], 3.0);
        let mut b = RegionBlock::new(vec![0, 1], 2);
        b.push(1, &[4.0, 5.0], 6.0);
        b.push(2, &[7.0, 8.0], 9.0);
        vec![a, b]
    }

    #[test]
    fn memory_source_reads_and_counts() {
        let src = MemorySource::new(blocks());
        assert_eq!(src.num_regions(), 2);
        assert_eq!(src.feature_arity(), 2);
        let b = src.read_region(1).unwrap();
        assert_eq!(b.n(), 2);
        assert_eq!(src.snapshot().regions_read(), 1);
        assert_eq!(src.snapshot().examples_read(), 2);
    }

    #[test]
    fn registry_bound_source_reports_into_registry() {
        let reg = Registry::shared();
        let src = MemorySource::with_registry(blocks(), &reg);
        src.read_region(0).unwrap();
        src.read_region(1).unwrap();
        assert_eq!(reg.snapshot().regions_read(), 2);
        assert_eq!(reg.snapshot().examples_read(), 3);
        // The source's own view is the same atomics.
        assert_eq!(src.snapshot().regions_read(), 2);
    }

    #[test]
    fn find_region_by_coords() {
        let src = MemorySource::new(blocks());
        assert_eq!(src.find_region(&[0, 1]), Some(1));
        assert_eq!(src.find_region(&[9, 9]), None);
    }

    #[test]
    fn total_examples_scans() {
        let src = MemorySource::new(blocks());
        assert_eq!(src.total_examples().unwrap(), 3);
        assert_eq!(src.snapshot().regions_read(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature arity")]
    fn arity_mismatch_rejected() {
        let mut bad = blocks();
        bad.push(RegionBlock::new(vec![1, 1], 3));
        MemorySource::new(bad);
    }
}
