//! Streaming writer for the on-disk entire-training-data file.

use crate::block::RegionBlock;
use crate::format::{
    encode_block, encode_header, encode_index, Header, IndexEntry, HEADER_LEN,
};
use bellwether_obs::{names, Counter, Registry};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Writes region blocks sequentially and finishes with the index+footer.
pub struct TrainingWriter {
    out: BufWriter<File>,
    entries: Vec<IndexEntry>,
    offset: u64,
    p: u32,
    arity: u32,
    buf: Vec<u8>,
    regions_counter: Counter,
    bytes_counter: Counter,
}

impl TrainingWriter {
    /// Create (truncate) `path` for an entire-training-data file with
    /// feature arity `p` and `arity` region coordinates.
    pub fn create(path: &Path, p: u32, arity: u32) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let mut buf = Vec::with_capacity(HEADER_LEN);
        encode_header(&Header { p, arity }, &mut buf);
        out.write_all(&buf)?;
        Ok(TrainingWriter {
            out,
            entries: Vec::new(),
            offset: HEADER_LEN as u64,
            p,
            arity,
            buf: Vec::new(),
            regions_counter: Counter::new(),
            bytes_counter: Counter::new(),
        })
    }

    /// Like [`TrainingWriter::create`], but write counters are bound to
    /// the canonical `storage/regions_written` / `storage/bytes_written`
    /// entries of `reg`.
    pub fn create_with_registry(
        path: &Path,
        p: u32,
        arity: u32,
        reg: &Registry,
    ) -> io::Result<Self> {
        let mut w = TrainingWriter::create(path, p, arity)?;
        w.regions_counter = reg.counter(names::STORAGE_REGIONS_WRITTEN);
        w.bytes_counter = reg.counter(names::STORAGE_BYTES_WRITTEN);
        Ok(w)
    }

    /// Append one region's training set. Blocks must be written in the
    /// region order scans should observe.
    pub fn write_region(&mut self, block: &RegionBlock) -> io::Result<()> {
        if block.p != self.p {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "feature arity mismatch",
            ));
        }
        if block.region.len() as u32 != self.arity {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "region arity mismatch",
            ));
        }
        self.buf.clear();
        encode_block(block, &mut self.buf);
        self.out.write_all(&self.buf)?;
        self.entries.push(IndexEntry {
            offset: self.offset,
            len: self.buf.len() as u64,
            coords: block.region.clone(),
        });
        self.offset += self.buf.len() as u64;
        self.regions_counter.inc();
        self.bytes_counter.add(self.buf.len() as u64);
        Ok(())
    }

    /// Number of regions written so far.
    pub fn regions_written(&self) -> usize {
        self.entries.len()
    }

    /// Write the index and footer, flush, and close.
    pub fn finish(mut self) -> io::Result<()> {
        self.buf.clear();
        encode_index(&self.entries, self.arity, self.offset, &mut self.buf);
        self.out.write_all(&self.buf)?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_mismatched_blocks() {
        let dir = std::env::temp_dir().join("bw_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bwtd");
        let mut w = TrainingWriter::create(&path, 2, 2).unwrap();
        let wrong_p = RegionBlock::new(vec![0, 0], 3);
        assert!(w.write_region(&wrong_p).is_err());
        let wrong_arity = RegionBlock::new(vec![0], 2);
        assert!(w.write_region(&wrong_arity).is_err());
        let ok = RegionBlock::new(vec![0, 0], 2);
        assert!(w.write_region(&ok).is_ok());
        assert_eq!(w.regions_written(), 1);
        w.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn registry_bound_writer_counts_writes() {
        let dir = std::env::temp_dir().join("bw_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("counted.bwtd");
        let reg = Registry::new();
        let mut w = TrainingWriter::create_with_registry(&path, 2, 2, &reg).unwrap();
        let mut b = RegionBlock::new(vec![0, 0], 2);
        b.push(1, &[1.0, 2.0], 3.0);
        w.write_region(&b).unwrap();
        w.write_region(&b).unwrap();
        w.finish().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.regions_written(), 2);
        assert!(snap.bytes_written() > 0);
        std::fs::remove_file(&path).ok();
    }
}
