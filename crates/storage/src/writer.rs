//! Streaming writer for the on-disk entire-training-data file.
//!
//! Durability: blocks stream into a temporary file next to the target
//! path; [`TrainingWriter::finish`] writes the index + footer, fsyncs,
//! and atomically renames the temp file into place. A crash at any point
//! before the rename leaves the target path untouched (either absent or
//! holding the previous complete file) — never a half-valid file.

use crate::block::RegionBlock;
use crate::format::{
    encode_block_versioned, encode_header, encode_index, Header, IndexEntry, HEADER_LEN,
    VERSION, VERSION_V1, VERSION_V2,
};
use bellwether_obs::{names, Counter, Registry};
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes region blocks sequentially and finishes with the index+footer.
pub struct TrainingWriter {
    out: BufWriter<File>,
    tmp_path: PathBuf,
    final_path: PathBuf,
    entries: Vec<IndexEntry>,
    offset: u64,
    p: u32,
    arity: u32,
    version: u32,
    buf: Vec<u8>,
    regions_counter: Counter,
    bytes_counter: Counter,
}

fn tmp_path_for(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

impl TrainingWriter {
    /// Create a writer targeting `path` for an entire-training-data file
    /// with feature arity `p` and `arity` region coordinates, in the
    /// current (checksummed v2) format. Data streams into `path + ".tmp"`
    /// until [`TrainingWriter::finish`] renames it into place; dropping
    /// the writer without finishing leaves `path` untouched.
    pub fn create(path: &Path, p: u32, arity: u32) -> io::Result<Self> {
        Self::create_versioned(path, p, arity, VERSION)
    }

    /// Like [`TrainingWriter::create`] but with an explicit format
    /// `version` — v1 emits checksum-less blocks for compatibility
    /// testing against old readers.
    pub fn create_versioned(path: &Path, p: u32, arity: u32, version: u32) -> io::Result<Self> {
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unsupported format version",
            ));
        }
        let tmp_path = tmp_path_for(path);
        let file = File::create(&tmp_path)?;
        let mut out = BufWriter::new(file);
        let mut buf = Vec::with_capacity(HEADER_LEN);
        encode_header(&Header { version, p, arity }, &mut buf);
        out.write_all(&buf)?;
        Ok(TrainingWriter {
            out,
            tmp_path,
            final_path: path.to_path_buf(),
            entries: Vec::new(),
            offset: HEADER_LEN as u64,
            p,
            arity,
            version,
            buf: Vec::new(),
            regions_counter: Counter::new(),
            bytes_counter: Counter::new(),
        })
    }

    /// Like [`TrainingWriter::create`], but write counters are bound to
    /// the canonical `storage/regions_written` / `storage/bytes_written`
    /// entries of `reg`.
    pub fn create_with_registry(
        path: &Path,
        p: u32,
        arity: u32,
        reg: &Registry,
    ) -> io::Result<Self> {
        let mut w = TrainingWriter::create(path, p, arity)?;
        w.regions_counter = reg.counter(names::STORAGE_REGIONS_WRITTEN);
        w.bytes_counter = reg.counter(names::STORAGE_BYTES_WRITTEN);
        Ok(w)
    }

    /// Append one region's training set. Blocks must be written in the
    /// region order scans should observe.
    pub fn write_region(&mut self, block: &RegionBlock) -> io::Result<()> {
        if block.p != self.p {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "feature arity mismatch",
            ));
        }
        if block.region.len() as u32 != self.arity {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "region arity mismatch",
            ));
        }
        self.buf.clear();
        encode_block_versioned(block, self.version, &mut self.buf);
        self.out.write_all(&self.buf)?;
        self.entries.push(IndexEntry {
            offset: self.offset,
            len: self.buf.len() as u64,
            coords: block.region.clone(),
        });
        self.offset += self.buf.len() as u64;
        self.regions_counter.inc();
        self.bytes_counter.add(self.buf.len() as u64);
        Ok(())
    }

    /// Number of regions written so far.
    pub fn regions_written(&self) -> usize {
        self.entries.len()
    }

    /// Write the index and footer, fsync the temp file, and atomically
    /// rename it over the target path. Only after the rename returns can
    /// a reader observe the new file — and then always in full.
    pub fn finish(mut self) -> io::Result<()> {
        self.buf.clear();
        encode_index(&self.entries, self.arity, self.offset, &mut self.buf);
        self.out.write_all(&self.buf)?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        fs::rename(&self.tmp_path, &self.final_path)?;
        // Make the rename itself durable where possible; directory
        // handles cannot be fsynced on every platform, so best-effort.
        if let Some(parent) = self.final_path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TrainingSource;

    #[test]
    fn rejects_mismatched_blocks() {
        let dir = std::env::temp_dir().join("bw_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bwtd");
        let mut w = TrainingWriter::create(&path, 2, 2).unwrap();
        let wrong_p = RegionBlock::new(vec![0, 0], 3);
        assert!(w.write_region(&wrong_p).is_err());
        let wrong_arity = RegionBlock::new(vec![0], 2);
        assert!(w.write_region(&wrong_arity).is_err());
        let ok = RegionBlock::new(vec![0, 0], 2);
        assert!(w.write_region(&ok).is_ok());
        assert_eq!(w.regions_written(), 1);
        w.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unknown_version() {
        let dir = std::env::temp_dir().join("bw_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("badver.bwtd");
        assert!(TrainingWriter::create_versioned(&path, 2, 2, 7).is_err());
    }

    #[test]
    fn registry_bound_writer_counts_writes() {
        let dir = std::env::temp_dir().join("bw_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("counted.bwtd");
        let reg = Registry::new();
        let mut w = TrainingWriter::create_with_registry(&path, 2, 2, &reg).unwrap();
        let mut b = RegionBlock::new(vec![0, 0], 2);
        b.push(1, &[1.0, 2.0], 3.0);
        w.write_region(&b).unwrap();
        w.write_region(&b).unwrap();
        w.finish().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.regions_written(), 2);
        assert!(snap.bytes_written() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_write_leaves_target_untouched() {
        let dir = std::env::temp_dir().join("bw_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.bwtd");
        std::fs::write(&path, b"previous complete file").unwrap();

        // Simulated crash: writer dropped mid-stream without finish().
        {
            let mut w = TrainingWriter::create(&path, 2, 1).unwrap();
            let mut b = RegionBlock::new(vec![0], 2);
            b.push(1, &[1.0, 2.0], 3.0);
            w.write_region(&b).unwrap();
        }
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"previous complete file",
            "target must not be clobbered before finish()"
        );
        assert!(tmp_path_for(&path).exists(), "data streamed to temp file");

        // A finished write replaces the target atomically and removes
        // the temp file.
        let mut w = TrainingWriter::create(&path, 2, 1).unwrap();
        let mut b = RegionBlock::new(vec![0], 2);
        b.push(1, &[1.0, 2.0], 3.0);
        w.write_region(&b).unwrap();
        w.finish().unwrap();
        assert!(!tmp_path_for(&path).exists());
        let src = crate::reader::DiskSource::open(&path).unwrap();
        assert_eq!(src.num_regions(), 1);
        std::fs::remove_file(&path).ok();
    }
}
