//! Streaming writer for the on-disk entire-training-data file.

use crate::block::RegionBlock;
use crate::format::{
    encode_block, encode_header, encode_index, Header, IndexEntry, HEADER_LEN,
};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Writes region blocks sequentially and finishes with the index+footer.
pub struct TrainingWriter {
    out: BufWriter<File>,
    entries: Vec<IndexEntry>,
    offset: u64,
    p: u32,
    arity: u32,
    buf: Vec<u8>,
}

impl TrainingWriter {
    /// Create (truncate) `path` for an entire-training-data file with
    /// feature arity `p` and `arity` region coordinates.
    pub fn create(path: &Path, p: u32, arity: u32) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let mut buf = Vec::with_capacity(HEADER_LEN);
        encode_header(&Header { p, arity }, &mut buf);
        out.write_all(&buf)?;
        Ok(TrainingWriter {
            out,
            entries: Vec::new(),
            offset: HEADER_LEN as u64,
            p,
            arity,
            buf: Vec::new(),
        })
    }

    /// Append one region's training set. Blocks must be written in the
    /// region order scans should observe.
    pub fn write_region(&mut self, block: &RegionBlock) -> io::Result<()> {
        if block.p != self.p {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "feature arity mismatch",
            ));
        }
        if block.region.len() as u32 != self.arity {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "region arity mismatch",
            ));
        }
        self.buf.clear();
        encode_block(block, &mut self.buf);
        self.out.write_all(&self.buf)?;
        self.entries.push(IndexEntry {
            offset: self.offset,
            len: self.buf.len() as u64,
            coords: block.region.clone(),
        });
        self.offset += self.buf.len() as u64;
        Ok(())
    }

    /// Number of regions written so far.
    pub fn regions_written(&self) -> usize {
        self.entries.len()
    }

    /// Write the index and footer, flush, and close.
    pub fn finish(mut self) -> io::Result<()> {
        self.buf.clear();
        encode_index(&self.entries, self.arity, self.offset, &mut self.buf);
        self.out.write_all(&self.buf)?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_mismatched_blocks() {
        let dir = std::env::temp_dir().join("bw_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bwtd");
        let mut w = TrainingWriter::create(&path, 2, 2).unwrap();
        let wrong_p = RegionBlock::new(vec![0, 0], 3);
        assert!(w.write_region(&wrong_p).is_err());
        let wrong_arity = RegionBlock::new(vec![0], 2);
        assert!(w.write_region(&wrong_arity).is_err());
        let ok = RegionBlock::new(vec![0, 0], 2);
        assert!(w.write_region(&ok).is_ok());
        assert_eq!(w.regions_written(), 1);
        w.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
