//! # bellwether-storage
//!
//! Region-partitioned storage for the *entire training data* — the
//! training sets of all feasible regions that every scan-based algorithm
//! in the paper (RF bellwether tree, single-scan/optimized bellwether
//! cube) iterates over.
//!
//! Two [`TrainingSource`] implementations share one trait and one IO
//! accounting scheme:
//!
//! * [`MemorySource`] — in-memory blocks, for the quality experiments;
//! * [`DiskSource`] — a positioned-read binary file with a trailing
//!   index, written by [`TrainingWriter`], for the efficiency
//!   experiments where every region request must hit disk.
//!
//! The [`IoStats`] counters record region reads, bytes and examples, so
//! tests can assert the paper's scan-count lemmas (naive tree ≈ `l·m`
//! scans, RF tree = `l`, single-scan cube = 1) exactly. Counts are read
//! through [`TrainingSource::snapshot`] (a `bellwether_obs`
//! `MetricsSnapshot`); constructing a source `with_registry` binds the
//! counters into a shared observability registry instead.
//!
//! [`CachedSource`] wraps any source with a byte-budgeted LRU cache of
//! decoded blocks, so the multi-scan algorithms stop re-decoding the
//! regions they revisit; cache hits bypass (and are not counted by) the
//! inner source's [`IoStats`].
//!
//! ## Fault tolerance
//!
//! The on-disk format checksums every block (CRC-32, format v2; v1 files
//! still read), so rot surfaces as a structured
//! [`CorruptBlock`](format::CorruptBlock) error instead of silently
//! decoding garbage. [`RetryingSource`] retries transient read failures
//! under a validated [`RetryPolicy`]; [`FaultySource`] injects
//! deterministic, seeded faults (via [`FaultPlan`]) so every recovery
//! path is testable without real hardware faults. The wrappers compose:
//! `CachedSource<RetryingSource<FaultySource<DiskSource>>>` behaves like
//! a flaky disk behind a retry layer behind a cache.
//!
//! ```
//! use bellwether_storage::{MemorySource, RegionBlock, TrainingSource};
//!
//! let mut block = RegionBlock::new(vec![0, 0], 2);
//! block.push(1, &[1.0, 2.0], 3.0);
//! let src = MemorySource::new(vec![block]);
//! let read = src.read_region(0).unwrap();
//! assert_eq!(read.n(), 1);
//! assert_eq!(src.snapshot().regions_read(), 1);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod crc32;
pub mod fault;
pub mod format;
pub mod metrics;
pub mod reader;
pub mod retry;
pub mod shard;
pub mod snapshot;
pub mod source;
pub mod writer;

pub use block::RegionBlock;
pub use cache::{CacheStats, CachedSource};
pub use fault::{FaultPlan, FaultySource};
pub use format::{is_corrupt, CorruptBlock};
pub use metrics::{CubeStats, IoStats};
pub use reader::DiskSource;
pub use retry::{RetryPolicy, RetryPolicyBuilder, RetryingSource};
pub use shard::{
    even_shard_plan, overlay_file_name, shard_file_name, OverlayMeta, ShardAppender, ShardManifest,
    ShardMeta, ShardedSource, ShardedWriter, MANIFEST_NAME,
};
pub use snapshot::{Section, SnapshotFile, SnapshotWriter, SNAPSHOT_VERSION};
pub use source::{MemorySource, TrainingSource};
pub use writer::TrainingWriter;
