//! Transient-fault recovery for training sources.
//!
//! [`RetryingSource`] wraps any [`TrainingSource`] and retries failed
//! `read_region` calls under a builder-validated [`RetryPolicy`]:
//! bounded attempts, exponential backoff capped at a maximum, and
//! *deterministic* jitter (a pure function of `(jitter seed, region,
//! attempt)`) so retried runs stay reproducible while concurrent workers
//! still fan out their retry schedules.
//!
//! Errors are classified before any attempt is spent:
//!
//! * **transient** — `Interrupted`, `TimedOut`, `WouldBlock`: the read
//!   may succeed if repeated (flaky disk, saturated queue). Retried.
//! * **permanent** — everything else, notably `InvalidData` carrying a
//!   [`crate::format::CorruptBlock`]: the same bytes will fail the same
//!   way forever. Returned immediately; retrying would only burn the
//!   budget and hide the rot from the caller.
//!
//! A successful retried read returns the block the inner source decoded
//! — bit-identical to a run with no faults at all, which the workspace
//! property tests assert across thread counts.

use crate::block::RegionBlock;
use crate::metrics::IoStats;
use crate::source::TrainingSource;
use bellwether_obs::{names, Counter, MetricsSnapshot, Registry};
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Validated retry configuration; build via [`RetryPolicy::builder`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    multiplier: f64,
    jitter_seed: u64,
}

/// Builder for [`RetryPolicy`]; invalid combinations are rejected at
/// [`RetryPolicyBuilder::build`] time with `io::ErrorKind::InvalidInput`.
#[derive(Debug, Clone)]
pub struct RetryPolicyBuilder {
    max_attempts: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    multiplier: f64,
    jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 1 ms base backoff doubling up to 50 ms.
    fn default() -> Self {
        RetryPolicy::builder().build().expect("default policy is valid")
    }
}

impl RetryPolicy {
    /// Start from the default policy (4 attempts, 1 ms base backoff
    /// doubling up to 50 ms, jitter seed 0).
    pub fn builder() -> RetryPolicyBuilder {
        RetryPolicyBuilder {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            multiplier: 2.0,
            jitter_seed: 0,
        }
    }

    /// Total attempts allowed per read (first try included).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Whether `err` is worth retrying: the kinds real sources emit for
    /// conditions that can clear on their own. Checksum failures and
    /// structural garbage are permanent — see the [module docs](self).
    pub fn is_transient(err: &io::Error) -> bool {
        matches!(
            err.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        )
    }

    /// Backoff before retry number `attempt` (1-based: after the first
    /// failure `attempt = 1`) of a read of `region`. Exponential in
    /// `attempt`, capped at the maximum, scaled by a deterministic
    /// jitter factor in `[0.5, 1.0]` — a pure function of the policy's
    /// jitter seed, the region and the attempt, so runs are
    /// reproducible while concurrent retries desynchronize.
    pub fn backoff_for(&self, region: usize, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.multiplier.powi(attempt.saturating_sub(1).min(63) as i32);
        let uncapped = self.base_backoff.as_secs_f64() * exp;
        let capped = uncapped.min(self.max_backoff.as_secs_f64());
        let h = jitter_mix(self.jitter_seed, ((region as u64) << 32) | attempt as u64);
        let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        Duration::from_secs_f64(capped * jitter)
    }
}

fn jitter_mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicyBuilder {
    /// Total attempts per read, first try included (≥ 1).
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n;
        self
    }

    /// Backoff before the first retry. `Duration::ZERO` disables
    /// sleeping entirely (useful in tests).
    pub fn base_backoff(mut self, d: Duration) -> Self {
        self.base_backoff = d;
        self
    }

    /// Upper bound on any single backoff (must be ≥ the base).
    pub fn max_backoff(mut self, d: Duration) -> Self {
        self.max_backoff = d;
        self
    }

    /// Exponential growth factor per retry (finite, ≥ 1).
    pub fn multiplier(mut self, m: f64) -> Self {
        self.multiplier = m;
        self
    }

    /// Seed for the deterministic jitter factor.
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Validate and build the policy.
    pub fn build(self) -> io::Result<RetryPolicy> {
        fn invalid(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidInput, msg)
        }
        if self.max_attempts < 1 {
            return Err(invalid("max_attempts must be at least 1"));
        }
        if !self.multiplier.is_finite() || self.multiplier < 1.0 {
            return Err(invalid("multiplier must be finite and >= 1"));
        }
        if self.max_backoff < self.base_backoff {
            return Err(invalid("max_backoff must be >= base_backoff"));
        }
        Ok(RetryPolicy {
            max_attempts: self.max_attempts,
            base_backoff: self.base_backoff,
            max_backoff: self.max_backoff,
            multiplier: self.multiplier,
            jitter_seed: self.jitter_seed,
        })
    }
}

/// A [`TrainingSource`] wrapper that retries transient read failures
/// under a [`RetryPolicy`]. Composes with the other wrappers — e.g.
/// `CachedSource<RetryingSource<DiskSource>>` caches only reads that
/// (eventually) succeeded. Each retry is counted under
/// `storage/retries`.
pub struct RetryingSource<S> {
    inner: S,
    policy: RetryPolicy,
    retries: Counter,
}

impl<S: TrainingSource> RetryingSource<S> {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        RetryingSource {
            inner,
            policy,
            retries: Counter::new(),
        }
    }

    /// Like [`RetryingSource::new`], but the retry counter is bound to
    /// the canonical `storage/retries` entry of `reg`.
    pub fn with_registry(inner: S, policy: RetryPolicy, reg: &Registry) -> Self {
        let mut src = RetryingSource::new(inner, policy);
        src.retries = reg.counter(names::STORAGE_RETRIES);
        src
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Total retries performed so far (first attempts are not retries).
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }
}

impl<S: TrainingSource> TrainingSource for RetryingSource<S> {
    fn num_regions(&self) -> usize {
        self.inner.num_regions()
    }

    fn feature_arity(&self) -> usize {
        self.inner.feature_arity()
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        self.inner.region_coords(idx)
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        let mut attempt = 1u32;
        loop {
            match self.inner.read_region(idx) {
                Ok(block) => return Ok(block),
                Err(err)
                    if attempt < self.policy.max_attempts && RetryPolicy::is_transient(&err) =>
                {
                    self.retries.inc();
                    let backoff = self.policy.backoff_for(idx, attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    /// Inner counters plus `storage/retries`.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.snapshot();
        snap.counters
            .push((names::STORAGE_RETRIES.to_string(), self.retries.get()));
        snap
    }

    fn find_region(&self, coords: &[u32]) -> Option<usize> {
        self.inner.find_region(coords)
    }

    fn shard_starts(&self) -> Option<Vec<usize>> {
        self.inner.shard_starts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedSource;
    use crate::fault::{FaultPlan, FaultySource};
    use crate::format::is_corrupt;
    use crate::source::MemorySource;

    fn blocks(n: usize) -> Vec<RegionBlock> {
        (0..n as u32)
            .map(|r| {
                let mut b = RegionBlock::new(vec![r], 1);
                b.push(r as i64, &[r as f64], r as f64);
                b
            })
            .collect()
    }

    /// Zero-backoff policy so tests never sleep.
    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy::builder()
            .max_attempts(max_attempts)
            .base_backoff(Duration::ZERO)
            .max_backoff(Duration::ZERO)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(RetryPolicy::builder().max_attempts(0).build().is_err());
        assert!(RetryPolicy::builder().multiplier(0.5).build().is_err());
        assert!(RetryPolicy::builder().multiplier(f64::NAN).build().is_err());
        assert!(RetryPolicy::builder()
            .base_backoff(Duration::from_millis(10))
            .max_backoff(Duration::from_millis(5))
            .build()
            .is_err());
        let ok = RetryPolicy::default();
        assert_eq!(ok.max_attempts(), 4);
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let p = RetryPolicy::builder()
            .base_backoff(Duration::from_millis(10))
            .max_backoff(Duration::from_millis(40))
            .multiplier(2.0)
            .jitter_seed(99)
            .build()
            .unwrap();
        let b1 = p.backoff_for(3, 1);
        let b2 = p.backoff_for(3, 2);
        let b5 = p.backoff_for(3, 5);
        // Jitter scales into [0.5, 1.0] of the nominal value.
        assert!(b1 >= Duration::from_millis(5) && b1 <= Duration::from_millis(10));
        assert!(b2 >= Duration::from_millis(10) && b2 <= Duration::from_millis(20));
        // Attempt 5 nominal = 160ms, capped at 40ms before jitter.
        assert!(b5 <= Duration::from_millis(40));
        // Pure function: same inputs, same backoff.
        assert_eq!(p.backoff_for(3, 2), b2);
        // Different regions desynchronize.
        assert_ne!(p.backoff_for(4, 1), b1);
    }

    #[test]
    fn transient_classification() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert!(RetryPolicy::is_transient(&io::Error::new(kind, "flake")));
        }
        for kind in [
            io::ErrorKind::InvalidData,
            io::ErrorKind::NotFound,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::PermissionDenied,
        ] {
            assert!(!RetryPolicy::is_transient(&io::Error::new(kind, "fatal")));
        }
    }

    #[test]
    fn retries_absorb_transient_faults() {
        // Every region flakes twice; 3 attempts are enough.
        let plan = FaultPlan::new(11).transient_every(1, 2);
        let faulty = FaultySource::new(MemorySource::new(blocks(4)), plan);
        let src = RetryingSource::new(faulty, fast_policy(3));
        for idx in 0..4 {
            assert_eq!(src.read_region(idx).unwrap().region, vec![idx as u32]);
        }
        assert_eq!(src.retries(), 8, "two retries per region");
        assert_eq!(src.snapshot().retries(), 8);
        assert_eq!(src.snapshot().regions_read(), 4);
    }

    #[test]
    fn attempts_budget_is_respected() {
        // Faults outlast the budget: 5 failing attempts vs 3 allowed.
        let plan = FaultPlan::new(11).transient_every(1, 5);
        let faulty = FaultySource::new(MemorySource::new(blocks(1)), plan);
        let src = RetryingSource::new(faulty, fast_policy(3));
        let err = src.read_region(0).expect_err("budget exhausted");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(src.retries(), 2, "max_attempts - 1 retries");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let plan = FaultPlan::new(13).corrupt_every(1);
        let faulty = FaultySource::new(MemorySource::new(blocks(1)), plan);
        let src = RetryingSource::new(faulty, fast_policy(5));
        let err = src.read_region(0).expect_err("corruption is permanent");
        assert!(is_corrupt(&err));
        assert_eq!(src.retries(), 0, "no attempts wasted on permanent rot");
        assert_eq!(src.inner().faults_injected(), 1, "single read attempt");
    }

    #[test]
    fn composes_with_the_cache() {
        // Cache on the outside: only successful reads are cached, and a
        // hit never touches the flaky inner source again.
        let plan = FaultPlan::new(17).transient_every(1, 1);
        let faulty = FaultySource::new(MemorySource::new(blocks(2)), plan);
        let retrying = RetryingSource::new(faulty, fast_policy(2));
        let src = CachedSource::new(retrying, 1 << 20);
        assert_eq!(src.read_region(0).unwrap().region, vec![0]);
        assert_eq!(src.read_region(0).unwrap().region, vec![0]);
        assert_eq!(src.inner().retries(), 1, "second read was a cache hit");
        let snap = src.snapshot();
        assert_eq!(snap.cache_hits(), 1);
        assert_eq!(snap.retries(), 1);
    }

    #[test]
    fn registry_bound_retries_show_in_registry_snapshot() {
        let reg = Registry::new();
        let plan = FaultPlan::new(19).transient_every(1, 1);
        let faulty = FaultySource::with_registry(MemorySource::new(blocks(1)), plan, &reg);
        let src = RetryingSource::with_registry(faulty, fast_policy(2), &reg);
        src.read_region(0).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.retries(), 1);
        assert_eq!(snap.faults_injected(), 1);
    }
}
