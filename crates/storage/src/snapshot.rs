//! Versioned, checksummed *snapshot container*: the byte-level carrier
//! for trained-model snapshots (and any future small artifact that must
//! survive disk rot).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────┐
//! │ header: magic "BWSN" | version u32 | section_count u32   │
//! │ section 0 … section N-1, each:                           │
//! │   kind u32 | len u64 | payload len bytes | crc32 u32     │
//! │ footer: magic "BWSN"                                     │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Each section's CRC-32 covers `kind | len | payload`, so a flipped bit
//! anywhere in a section — including its framing — surfaces as a
//! structured [`CorruptBlock`](crate::format::CorruptBlock) error (the
//! same classifier the training-data format uses; see
//! [`crate::format::is_corrupt`]). The version in the header is the
//! contract that v1 snapshots stay readable forever: readers accept
//! every version they know and reject unknown future versions instead of
//! misparsing them.
//!
//! Durability follows the [`crate::writer::TrainingWriter`] discipline:
//! [`SnapshotWriter::finish`] writes the assembled file to a temporary
//! path, fsyncs, and atomically renames it into place, so a crash never
//! leaves a half-valid snapshot at the target path.
//!
//! Every decode path is *total*: truncated, oversized or garbage input
//! returns `io::Error`, never panics, whatever the byte length.

use crate::crc32::crc32;
use crate::format::CorruptBlock;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"BWSN";
/// First snapshot container version.
pub const SNAPSHOT_VERSION_V1: u32 = 1;
/// Current (default-written) snapshot container version.
pub const SNAPSHOT_VERSION: u32 = SNAPSHOT_VERSION_V1;
/// Header byte length: magic + version + section count.
pub const SNAPSHOT_HEADER_LEN: usize = 4 + 4 + 4;
/// Per-section framing overhead: kind u32 + len u64 + crc32 u32.
pub const SECTION_OVERHEAD: usize = 4 + 8 + 4;

/// One decoded section: a caller-defined kind tag plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Caller-defined kind tag (e.g. "item table", "tree").
    pub kind: u32,
    /// Raw payload bytes, CRC-validated.
    pub payload: Vec<u8>,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn tmp_path_for(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Accumulates checksummed sections; [`finish`] writes them through a
/// temp file and makes the snapshot visible atomically.
///
/// The header carries the section count, so the whole file is assembled
/// before anything touches the target path — snapshots hold models, not
/// training data, and fit comfortably in memory.
///
/// [`finish`]: SnapshotWriter::finish
pub struct SnapshotWriter {
    body: Vec<u8>,
    final_path: PathBuf,
    sections: u32,
}

impl SnapshotWriter {
    /// Create a writer targeting `path` in the current container
    /// version. Nothing is written until [`SnapshotWriter::finish`];
    /// dropping the writer without finishing leaves `path` untouched.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(SnapshotWriter {
            body: Vec::new(),
            final_path: path.to_path_buf(),
            sections: 0,
        })
    }

    /// Append one section. Sections are read back in write order.
    pub fn write_section(&mut self, kind: u32, payload: &[u8]) -> io::Result<()> {
        let frame_start = self.body.len();
        self.body.extend_from_slice(&kind.to_le_bytes());
        self.body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.body.extend_from_slice(payload);
        let sum = crc32(&self.body[frame_start..]);
        self.body.extend_from_slice(&sum.to_le_bytes());
        self.sections += 1;
        Ok(())
    }

    /// Number of sections written so far.
    pub fn sections_written(&self) -> u32 {
        self.sections
    }

    /// Write header + sections + footer to `path + ".tmp"`, fsync, and
    /// atomically rename over the target path. Only after the rename
    /// returns can a reader observe the snapshot — and then always in
    /// full.
    pub fn finish(self) -> io::Result<()> {
        let tmp_path = tmp_path_for(&self.final_path);
        {
            let mut out = BufWriter::new(File::create(&tmp_path)?);
            out.write_all(SNAPSHOT_MAGIC)?;
            out.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
            out.write_all(&self.sections.to_le_bytes())?;
            out.write_all(&self.body)?;
            out.write_all(SNAPSHOT_MAGIC)?;
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        fs::rename(&tmp_path, &self.final_path)?;
        // Make the rename itself durable where possible; directory
        // handles cannot be fsynced on every platform, so best-effort.
        if let Some(parent) = self.final_path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

/// A fully read and CRC-validated snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// Container version the file was written with.
    pub version: u32,
    /// Sections in write order.
    pub sections: Vec<Section>,
}

impl SnapshotFile {
    /// Read and validate a snapshot from `path`: header magic/version,
    /// every section CRC, and the footer magic. A checksum mismatch
    /// returns a [`CorruptBlock`](crate::format::CorruptBlock)-carrying
    /// error (see [`crate::format::is_corrupt`]); structural damage
    /// returns a plain `InvalidData` error. Never panics.
    pub fn read(path: &Path) -> io::Result<SnapshotFile> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }

    /// Decode a snapshot from bytes already in memory (the disk-free
    /// half of [`SnapshotFile::read`], used directly by tests).
    pub fn decode(bytes: &[u8]) -> io::Result<SnapshotFile> {
        if bytes.len() < SNAPSHOT_HEADER_LEN + 4 {
            return Err(bad("truncated snapshot"));
        }
        if &bytes[..4] != SNAPSHOT_MAGIC {
            return Err(bad("bad snapshot magic"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION_V1 {
            return Err(bad("unsupported snapshot version"));
        }
        let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let mut at = SNAPSHOT_HEADER_LEN;
        let mut sections = Vec::new();
        for _ in 0..count {
            // Frame: kind u32 | len u64 | payload | crc32.
            if bytes.len() - at < SECTION_OVERHEAD {
                return Err(bad("truncated section header"));
            }
            let kind = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            let len64 = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let len = usize::try_from(len64).map_err(|_| bad("oversized section"))?;
            let body_end = len
                .checked_add(at + 12)
                .ok_or_else(|| bad("oversized section"))?;
            let end = body_end.checked_add(4).ok_or_else(|| bad("oversized section"))?;
            if bytes.len() < end {
                return Err(bad("truncated section payload"));
            }
            let expected =
                u32::from_le_bytes(bytes[body_end..end].try_into().expect("4 bytes"));
            let actual = crc32(&bytes[at..body_end]);
            if actual != expected {
                return Err(CorruptBlock { expected, actual }.into());
            }
            sections.push(Section {
                kind,
                payload: bytes[at + 12..body_end].to_vec(),
            });
            at = end;
        }
        if bytes.len() - at != 4 || &bytes[at..at + 4] != SNAPSHOT_MAGIC {
            return Err(bad("bad snapshot footer"));
        }
        Ok(SnapshotFile { version, sections })
    }

    /// The first section of the given kind, if present.
    pub fn section(&self, kind: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.payload.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::is_corrupt;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join("bw_snapshot_test");
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_sample(path: &Path) {
        let mut w = SnapshotWriter::create(path).unwrap();
        w.write_section(1, b"first payload").unwrap();
        w.write_section(7, &[]).unwrap();
        w.write_section(2, &[0xAB; 300]).unwrap();
        assert_eq!(w.sections_written(), 3);
        w.finish().unwrap();
    }

    #[test]
    fn round_trip_preserves_sections_in_order() {
        let path = tmp_dir().join("roundtrip.bwsn");
        write_sample(&path);
        let snap = SnapshotFile::read(&path).unwrap();
        assert_eq!(snap.version, SNAPSHOT_VERSION_V1);
        assert_eq!(snap.sections.len(), 3);
        assert_eq!(snap.sections[0].kind, 1);
        assert_eq!(snap.sections[0].payload, b"first payload");
        assert_eq!(snap.sections[1], Section { kind: 7, payload: vec![] });
        assert_eq!(snap.section(2).unwrap().len(), 300);
        assert!(snap.section(99).is_none());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let path = tmp_dir().join("trunc.bwsn");
        write_sample(&path);
        let bytes = fs::read(&path).unwrap();
        for len in 0..bytes.len() {
            assert!(
                SnapshotFile::decode(&bytes[..len]).is_err(),
                "truncation at {len} decoded"
            );
        }
        assert!(SnapshotFile::decode(&bytes).is_ok());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn single_bit_flip_in_a_section_is_corrupt_never_panics() {
        let path = tmp_dir().join("bitflip.bwsn");
        write_sample(&path);
        let bytes = fs::read(&path).unwrap();
        for pos in 0..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad_bytes = bytes.clone();
                bad_bytes[pos] ^= bit;
                let err = SnapshotFile::decode(&bad_bytes)
                    .expect_err("corruption must not decode cleanly");
                // Flips inside section frames are CorruptBlock; flips in
                // the header/footer magic or version are structural.
                let in_sections = (SNAPSHOT_HEADER_LEN..bytes.len() - 4).contains(&pos);
                if in_sections {
                    // A flipped length byte can push the cursor out of
                    // bounds before any CRC check — still a clean error.
                    assert!(
                        is_corrupt(&err) || err.kind() == io::ErrorKind::InvalidData,
                        "pos {pos}: {err}"
                    );
                }
            }
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_bit_flip_is_classified_corrupt() {
        let path = tmp_dir().join("payload_flip.bwsn");
        write_sample(&path);
        let bytes = fs::read(&path).unwrap();
        // Flip inside the first section's payload proper (after the
        // header and the 12-byte section frame).
        let pos = SNAPSHOT_HEADER_LEN + 12 + 3;
        let mut bad_bytes = bytes.clone();
        bad_bytes[pos] ^= 0x41;
        let err = SnapshotFile::decode(&bad_bytes).unwrap_err();
        assert!(is_corrupt(&err), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_version_rejected() {
        let path = tmp_dir().join("future.bwsn");
        write_sample(&path);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = SnapshotFile::decode(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!is_corrupt(&err));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_write_leaves_target_untouched() {
        let path = tmp_dir().join("atomic.bwsn");
        fs::write(&path, b"previous complete snapshot").unwrap();
        {
            let mut w = SnapshotWriter::create(&path).unwrap();
            w.write_section(1, b"half done").unwrap();
            // Dropped without finish(): simulated crash.
        }
        assert_eq!(fs::read(&path).unwrap(), b"previous complete snapshot");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.write_section(1, b"complete").unwrap();
        w.finish().unwrap();
        let snap = SnapshotFile::read(&path).unwrap();
        assert_eq!(snap.section(1).unwrap(), b"complete");
        assert!(!tmp_path_for(&path).exists());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let path = tmp_dir().join("empty.bwsn");
        let w = SnapshotWriter::create(&path).unwrap();
        w.finish().unwrap();
        let snap = SnapshotFile::read(&path).unwrap();
        assert!(snap.sections.is_empty());
        fs::remove_file(&path).ok();
    }
}
