//! Property tests: the binary format round-trips arbitrary blocks, and
//! the disk source agrees with the memory source byte for byte.

use bellwether_storage::{
    DiskSource, MemorySource, RegionBlock, TrainingSource, TrainingWriter,
};
use proptest::prelude::*;

fn block_strategy(p: usize, arity: usize) -> impl Strategy<Value = RegionBlock> {
    let row = (any::<i64>(), prop::collection::vec(-1e12..1e12f64, p + 1));
    prop::collection::vec(row, 0..25).prop_map(move |rows| {
        let mut b = RegionBlock::new(vec![1; arity], p as u32);
        for (id, vals) in rows {
            b.push(id, &vals[..p], vals[p]);
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn format_round_trips(blocks in prop::collection::vec(block_strategy(3, 2), 1..8)) {
        let dir = std::env::temp_dir().join("bw_storage_props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt_{}.bwtd", std::process::id()));
        {
            let mut w = TrainingWriter::create(&path, 3, 2).unwrap();
            for b in &blocks {
                w.write_region(b).unwrap();
            }
            w.finish().unwrap();
        }
        let disk = DiskSource::open(&path).unwrap();
        let mem = MemorySource::new(blocks.clone());
        prop_assert_eq!(disk.num_regions(), mem.num_regions());
        prop_assert_eq!(disk.feature_arity(), mem.feature_arity());
        for i in 0..blocks.len() {
            let d = disk.read_region(i).unwrap();
            let m = mem.read_region(i).unwrap();
            prop_assert_eq!(d, m);
        }
        prop_assert_eq!(
            disk.total_examples().unwrap(),
            blocks.iter().map(|b| b.n() as u64).sum::<u64>()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_accounting_is_exact(blocks in prop::collection::vec(block_strategy(2, 1), 1..6)) {
        let mem = MemorySource::new(blocks.clone());
        for (i, b) in blocks.iter().enumerate() {
            mem.read_region(i).unwrap();
            let _ = b;
        }
        prop_assert_eq!(mem.stats().regions_read(), blocks.len() as u64);
        prop_assert_eq!(
            mem.stats().examples_read(),
            blocks.iter().map(|b| b.n() as u64).sum::<u64>()
        );
        prop_assert_eq!(
            mem.stats().bytes_read(),
            blocks.iter().map(|b| b.encoded_len() as u64).sum::<u64>()
        );
    }
}
