//! Property tests: the binary format round-trips arbitrary blocks, and
//! the disk source agrees with the memory source byte for byte.

use bellwether_prop::{check, Rng};
use bellwether_storage::{
    DiskSource, MemorySource, RegionBlock, TrainingSource, TrainingWriter,
};

fn block(rng: &mut Rng, p: usize, arity: usize) -> RegionBlock {
    let rows = rng.vec_of(0, 25, |r| {
        let id = r.next_u64() as i64;
        let vals: Vec<f64> = (0..p + 1).map(|_| r.f64_in(-1e12, 1e12)).collect();
        (id, vals)
    });
    let mut b = RegionBlock::new(vec![1; arity], p as u32);
    for (id, vals) in rows {
        b.push(id, &vals[..p], vals[p]);
    }
    b
}

#[test]
fn format_round_trips() {
    check("format_round_trips", 32, |rng| {
        let blocks = rng.vec_of(1, 8, |r| block(r, 3, 2));
        let dir = std::env::temp_dir().join("bw_storage_props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt_{}.bwtd", std::process::id()));
        {
            let mut w = TrainingWriter::create(&path, 3, 2).unwrap();
            for b in &blocks {
                w.write_region(b).unwrap();
            }
            w.finish().unwrap();
        }
        let disk = DiskSource::open(&path).unwrap();
        let mem = MemorySource::new(blocks.clone());
        assert_eq!(disk.num_regions(), mem.num_regions());
        assert_eq!(disk.feature_arity(), mem.feature_arity());
        for i in 0..blocks.len() {
            let d = disk.read_region(i).unwrap();
            let m = mem.read_region(i).unwrap();
            assert_eq!(d, m);
        }
        assert_eq!(
            disk.total_examples().unwrap(),
            blocks.iter().map(|b| b.n() as u64).sum::<u64>()
        );
        std::fs::remove_file(&path).ok();
    });
}

#[test]
fn io_accounting_is_exact() {
    check("io_accounting_is_exact", 32, |rng| {
        let blocks = rng.vec_of(1, 6, |r| block(r, 2, 1));
        let mem = MemorySource::new(blocks.clone());
        for (i, b) in blocks.iter().enumerate() {
            mem.read_region(i).unwrap();
            let _ = b;
        }
        let snap = mem.snapshot();
        assert_eq!(snap.regions_read(), blocks.len() as u64);
        assert_eq!(
            snap.examples_read(),
            blocks.iter().map(|b| b.n() as u64).sum::<u64>()
        );
        assert_eq!(
            snap.bytes_read(),
            blocks.iter().map(|b| b.encoded_len() as u64).sum::<u64>()
        );
    });
}
