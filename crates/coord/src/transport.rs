//! Worker transports: the real multi-process one and a deterministic
//! in-process simulation.
//!
//! The coordinator is written against [`Transport`]/[`WorkerSpawner`]
//! only, so the restart loop, deadline handling, and degradation logic
//! exercised by the simulated fault campaigns in `cargo test` are the
//! exact code paths that manage real OS processes.
//!
//! [`SimTransport`] replays the same [`WorkerFaultPlan`] decisions as a
//! real worker but maps their symptoms onto channel state instead of
//! wall-clock behaviour: a crash closes the channel
//! (`UnexpectedEof`), a hang wedges it so the next `recv` reports
//! `TimedOut` *immediately* — no sleeps anywhere, which is what makes
//! the fault campaigns replayable without flaky timing.

use crate::fault::{WorkerFault, WorkerFaultPlan};
use crate::frame::{self, read_frame, write_frame, Request, Response};
use crate::worker::{self, WORKER_FLAG};
use bellwether_storage::{DiskSource, TrainingSource};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// One live worker connection (one incarnation of one shard's worker).
pub trait Transport: Send {
    /// Send a request frame.
    fn send(&mut self, req: &Request) -> io::Result<()>;
    /// Receive the next response frame, failing with `TimedOut` if the
    /// worker does not reply within `deadline`.
    fn recv(&mut self, deadline: Duration) -> io::Result<Response>;
    /// Tear the connection down hard (kill the process / drop the
    /// channel). Idempotent.
    fn terminate(&mut self);
}

/// Factory for worker connections; `incarnation` counts spawns of this
/// worker so the fault plan can band faults over restarts.
pub trait WorkerSpawner: Send + Sync {
    /// Spawn incarnation `incarnation` of worker `worker`.
    fn spawn(&self, worker: usize, incarnation: u32) -> io::Result<Box<dyn Transport>>;
    /// True for the simulated transport: backoff sleeps are skipped so
    /// fault campaigns run at full speed with deterministic outcomes.
    fn is_simulated(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Real processes
// ---------------------------------------------------------------------------

/// Spawns one OS process per worker: `<bin> --worker --shard <file>
/// --worker-id <w> --incarnation <i> [--fault <spec>]`.
pub struct ProcessSpawner {
    bin: PathBuf,
    shard_files: Vec<PathBuf>,
    plan: WorkerFaultPlan,
}

impl ProcessSpawner {
    /// Spawn workers from `bin` (a binary whose `main` calls
    /// [`worker::maybe_run_worker`] first), one per shard file.
    pub fn new(bin: PathBuf, shard_files: Vec<PathBuf>, plan: WorkerFaultPlan) -> Self {
        ProcessSpawner { bin, shard_files, plan }
    }
}

impl WorkerSpawner for ProcessSpawner {
    fn spawn(&self, worker: usize, incarnation: u32) -> io::Result<Box<dyn Transport>> {
        let shard = self.shard_files.get(worker).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no shard file for worker {worker}"))
        })?;
        let mut cmd = Command::new(&self.bin);
        cmd.arg(WORKER_FLAG)
            .arg("--shard")
            .arg(shard)
            .arg("--worker-id")
            .arg(worker.to_string())
            .arg("--incarnation")
            .arg(incarnation.to_string());
        if self.plan.is_faulty() || self.plan.slow_every > 0 {
            cmd.arg("--fault").arg(self.plan.to_spec());
        }
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel::<io::Result<(u8, Vec<u8>)>>();
        let reader = std::thread::spawn(move || {
            let mut stdout = BufReader::new(stdout);
            loop {
                match read_frame(&mut stdout) {
                    Ok(frame) => {
                        if tx.send(Ok(frame)).is_err() {
                            return;
                        }
                    }
                    Err(err) => {
                        let _ = tx.send(Err(err));
                        return;
                    }
                }
            }
        });
        Ok(Box::new(ProcessTransport {
            child,
            stdin: Some(BufWriter::new(stdin)),
            rx,
            reader: Some(reader),
        }))
    }
}

/// A worker running as a child process; frames are read off stdout by a
/// dedicated thread so `recv` can enforce a deadline without blocking
/// on a hung pipe.
pub struct ProcessTransport {
    child: Child,
    stdin: Option<BufWriter<ChildStdin>>,
    rx: mpsc::Receiver<io::Result<(u8, Vec<u8>)>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Transport for ProcessTransport {
    fn send(&mut self, req: &Request) -> io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin closed"))?;
        let (kind, payload) = req.encode();
        write_frame(stdin, kind, &payload)?;
        stdin.flush()
    }

    fn recv(&mut self, deadline: Duration) -> io::Result<Response> {
        match self.rx.recv_timeout(deadline) {
            Ok(Ok((kind, payload))) => Response::decode(kind, &payload),
            Ok(Err(err)) => Err(err),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "worker missed reply deadline",
            )),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "worker stream closed",
            )),
        }
    }

    fn terminate(&mut self) {
        self.stdin = None; // close the pipe so a clean worker exits
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        self.terminate();
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

/// Spawns in-process simulated workers over the same shard files.
pub struct SimSpawner {
    shard_files: Vec<PathBuf>,
    plan: WorkerFaultPlan,
}

impl SimSpawner {
    /// Simulated workers, one per shard file.
    pub fn new(shard_files: Vec<PathBuf>, plan: WorkerFaultPlan) -> Self {
        SimSpawner { shard_files, plan }
    }
}

impl WorkerSpawner for SimSpawner {
    fn spawn(&self, worker: usize, incarnation: u32) -> io::Result<Box<dyn Transport>> {
        let shard = self.shard_files.get(worker).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no shard file for worker {worker}"))
        })?;
        let src = DiskSource::open(shard)?;
        Ok(Box::new(SimTransport {
            src: Box::new(src),
            plan: self.plan,
            worker,
            incarnation,
            frame_no: 0,
            queue: VecDeque::new(),
            crashed: false,
            wedged: false,
        }))
    }

    fn is_simulated(&self) -> bool {
        true
    }
}

/// An in-process worker that round-trips every message through the real
/// frame codec and the real [`worker::handle_request`] handler, with
/// fault symptoms mapped onto channel state instead of wall time.
pub struct SimTransport {
    src: Box<dyn TrainingSource + Send>,
    plan: WorkerFaultPlan,
    worker: usize,
    incarnation: u32,
    frame_no: u64,
    queue: VecDeque<Vec<u8>>,
    crashed: bool,
    wedged: bool,
}

impl Transport for SimTransport {
    fn send(&mut self, req: &Request) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "worker crashed"));
        }
        if self.wedged {
            return Ok(()); // a hung worker absorbs input silently
        }
        // Round-trip the request through the wire codec, exactly as a
        // real worker would see it.
        let (kind, payload) = req.encode();
        let bytes = frame::encode_frame(kind, &payload);
        let (kind, payload) = frame::decode_frame(&bytes)?;
        let req = Request::decode(kind, &payload)?;
        let is_read = matches!(req, Request::Read { .. });
        let fault = self
            .plan
            .fault_for(self.worker, self.incarnation, self.frame_no, is_read);
        match fault {
            Some(WorkerFault::Crash) => {
                self.crashed = true;
                self.frame_no += 1;
                return Ok(()); // the send "succeeds"; recv sees the death
            }
            Some(WorkerFault::Hang) => {
                self.wedged = true;
                self.frame_no += 1;
                return Ok(());
            }
            Some(WorkerFault::Slow(_)) | Some(WorkerFault::CorruptFrame) | None => {}
        }
        let (resp, _done) = worker::handle_request(self.src.as_ref(), &req);
        let (rkind, rpayload) = resp.encode();
        let mut bytes = frame::encode_frame(rkind, &rpayload);
        if matches!(fault, Some(WorkerFault::CorruptFrame)) {
            frame::corrupt_frame(
                &mut bytes,
                self.plan
                    .corruption_hash(self.worker, self.incarnation, self.frame_no),
            );
        }
        self.queue.push_back(bytes);
        self.frame_no += 1;
        Ok(())
    }

    fn recv(&mut self, _deadline: Duration) -> io::Result<Response> {
        if let Some(bytes) = self.queue.pop_front() {
            let (kind, payload) = frame::decode_frame(&bytes)?;
            return Response::decode(kind, &payload);
        }
        if self.wedged {
            // A real hung worker would make the coordinator wait out
            // its deadline; the simulation reports the timeout with no
            // wall-clock sleep at all.
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "worker missed reply deadline (simulated hang)",
            ));
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "worker stream closed (simulated crash)",
        ))
    }

    fn terminate(&mut self) {
        self.crashed = true;
        self.queue.clear();
    }
}
