//! Seeded process-level fault plans for the worker lifecycle.
//!
//! Mirrors the region-level `FaultPlan` idiom in `bellwether-storage`:
//! a small copyable plan plus a SplitMix64-style mixer makes every
//! fault decision a pure function of `(seed, worker, incarnation,
//! frame)`. The same plan therefore produces the same fault sequence in
//! the real-process transport and the simulated one, and tests can
//! compute *exactly* which incarnations fail and assert counter values
//! instead of inequalities.
//!
//! ## Incarnation bands
//!
//! Faults are organized in **bands over worker incarnations** so that a
//! plan with a sufficient restart budget is guaranteed to converge:
//!
//! * incarnations `0 .. crashes` exit abruptly mid-protocol,
//! * the next `hangs` incarnations wedge (stop replying) at a frame,
//! * the next `corrupts` incarnations corrupt one reply frame,
//! * every later incarnation is clean.
//!
//! Within a faulty incarnation the trigger frame is drawn
//! deterministically from `0..FAULT_WINDOW`, so frame 0 — the `Hello`
//! handshake — is hit by some seeds: crash-before-first-frame is part
//! of the campaign, not a separate mode. A `poisoned` worker instead
//! crashes on *every* read in *every* incarnation (but answers the
//! handshake), which is how tests exhaust a retry budget and exercise
//! `SkipUnreadable` degradation.

use std::time::Duration;

/// Trigger frames are drawn from `0..FAULT_WINDOW` within an
/// incarnation; keep it small so short request streams still fire.
pub const FAULT_WINDOW: u64 = 4;

/// A fault decision for one protocol frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Exit the process abruptly (simulated: mark the channel dead).
    Crash,
    /// Stop replying; the coordinator's deadline must fire.
    Hang,
    /// Reply, but flip one bit of the response frame.
    CorruptFrame,
    /// Reply after an injected delay (latency, not an error).
    Slow(Duration),
}

/// Deterministic fault schedule for a worker fleet. `Copy` so the
/// coordinator, spawner, and CLI spec can all carry it by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Incarnations per worker that crash abruptly.
    pub crashes: u32,
    /// Incarnations per worker (after the crash band) that hang.
    pub hangs: u32,
    /// Incarnations per worker (after the hang band) that corrupt one
    /// reply frame.
    pub corrupts: u32,
    /// Every `slow_every`-th read is delayed by [`Self::slow`]
    /// (0 disables).
    pub slow_every: u64,
    /// Injected delay for slow replies.
    pub slow: Duration,
    /// A worker whose reads *always* crash, in every incarnation; the
    /// handshake still succeeds. Used to exhaust restart budgets.
    pub poisoned: Option<usize>,
}

/// SplitMix64 finalizer; same mixing idiom as `storage`'s fault plan.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl WorkerFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// A clean plan carrying only a seed; add faults with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        WorkerFaultPlan {
            seed,
            crashes: 0,
            hangs: 0,
            corrupts: 0,
            slow_every: 0,
            slow: Duration::ZERO,
            poisoned: None,
        }
    }

    /// First `n` incarnations of every worker crash.
    pub fn with_crashes(mut self, n: u32) -> Self {
        self.crashes = n;
        self
    }

    /// Next `n` incarnations of every worker hang.
    pub fn with_hangs(mut self, n: u32) -> Self {
        self.hangs = n;
        self
    }

    /// Next `n` incarnations of every worker corrupt one reply frame.
    pub fn with_corrupts(mut self, n: u32) -> Self {
        self.corrupts = n;
        self
    }

    /// Delay every `period`-th read by `delay`.
    pub fn with_slow(mut self, period: u64, delay: Duration) -> Self {
        self.slow_every = period;
        self.slow = delay;
        self
    }

    /// Mark one worker as permanently poisoned (reads always crash).
    pub fn with_poisoned(mut self, worker: usize) -> Self {
        self.poisoned = Some(worker);
        self
    }

    /// True if the plan injects any error-class fault (latency alone
    /// does not count).
    pub fn is_faulty(&self) -> bool {
        self.crashes > 0 || self.hangs > 0 || self.corrupts > 0 || self.poisoned.is_some()
    }

    /// Incarnations a worker needs before it runs clean; a restart
    /// budget strictly larger than this converges.
    pub fn faulty_incarnations(&self) -> u32 {
        self.crashes + self.hangs + self.corrupts
    }

    /// Deterministic mixer over the full decision coordinates.
    fn h(&self, worker: usize, incarnation: u32, salt: u64) -> u64 {
        mix(self
            .seed
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add((worker as u64) << 32)
            .wrapping_add(incarnation as u64)
            .wrapping_add(salt.wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// The frame index (0-based count of requests processed in this
    /// incarnation) at which this incarnation's band fault fires.
    pub fn trigger_frame(&self, worker: usize, incarnation: u32) -> u64 {
        self.h(worker, incarnation, 1) % FAULT_WINDOW
    }

    /// The fault (if any) to inject for request number `frame` of
    /// `(worker, incarnation)`. `is_read` is true for `Read` requests —
    /// poisoned workers only fault on reads so the handshake can
    /// succeed.
    pub fn fault_for(
        &self,
        worker: usize,
        incarnation: u32,
        frame: u64,
        is_read: bool,
    ) -> Option<WorkerFault> {
        if self.poisoned == Some(worker) {
            return if is_read { Some(WorkerFault::Crash) } else { None };
        }
        let band = incarnation;
        let banded = if band < self.crashes {
            Some(WorkerFault::Crash)
        } else if band < self.crashes + self.hangs {
            Some(WorkerFault::Hang)
        } else if band < self.faulty_incarnations() {
            Some(WorkerFault::CorruptFrame)
        } else {
            None
        };
        if let Some(fault) = banded {
            if frame == self.trigger_frame(worker, incarnation) {
                return Some(fault);
            }
        }
        if self.slow_every > 0
            && is_read
            && self
                .h(worker, incarnation, frame.wrapping_add(2))
                .is_multiple_of(self.slow_every)
        {
            return Some(WorkerFault::Slow(self.slow));
        }
        None
    }

    /// Hash used to pick which bit a corrupt-frame fault flips.
    pub fn corruption_hash(&self, worker: usize, incarnation: u32, frame: u64) -> u64 {
        self.h(worker, incarnation, frame.wrapping_add(3))
    }

    /// Serialize for the `--fault` worker CLI flag.
    pub fn to_spec(&self) -> String {
        let poisoned = match self.poisoned {
            Some(w) => w.to_string(),
            None => "none".into(),
        };
        format!(
            "seed={},crashes={},hangs={},corrupts={},slow_every={},slow_us={},poisoned={}",
            self.seed,
            self.crashes,
            self.hangs,
            self.corrupts,
            self.slow_every,
            self.slow.as_micros(),
            poisoned
        )
    }

    /// Parse a [`Self::to_spec`] string; `None` on any malformed field.
    pub fn from_spec(spec: &str) -> Option<Self> {
        let mut plan = WorkerFaultPlan::none();
        for part in spec.split(',') {
            let (key, value) = part.split_once('=')?;
            match key {
                "seed" => plan.seed = value.parse().ok()?,
                "crashes" => plan.crashes = value.parse().ok()?,
                "hangs" => plan.hangs = value.parse().ok()?,
                "corrupts" => plan.corrupts = value.parse().ok()?,
                "slow_every" => plan.slow_every = value.parse().ok()?,
                "slow_us" => plan.slow = Duration::from_micros(value.parse().ok()?),
                "poisoned" => {
                    plan.poisoned = if value == "none" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    }
                }
                _ => return None,
            }
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = WorkerFaultPlan::new(42).with_crashes(1).with_hangs(1).with_corrupts(1);
        for worker in 0..4 {
            for incarnation in 0..5 {
                for frame in 0..8 {
                    let a = plan.fault_for(worker, incarnation, frame, true);
                    let b = plan.fault_for(worker, incarnation, frame, true);
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn bands_fire_exactly_once_then_go_clean() {
        let plan = WorkerFaultPlan::new(7).with_crashes(2).with_hangs(1).with_corrupts(1);
        for worker in 0..3 {
            for incarnation in 0..plan.faulty_incarnations() {
                let expected = if incarnation < 2 {
                    WorkerFault::Crash
                } else if incarnation < 3 {
                    WorkerFault::Hang
                } else {
                    WorkerFault::CorruptFrame
                };
                let fired: Vec<u64> = (0..FAULT_WINDOW)
                    .filter(|&f| plan.fault_for(worker, incarnation, f, true) == Some(expected))
                    .collect();
                assert_eq!(fired.len(), 1, "band fault fires exactly once");
                assert_eq!(fired[0], plan.trigger_frame(worker, incarnation));
            }
            // Past the bands, no error-class fault ever fires.
            for incarnation in plan.faulty_incarnations()..plan.faulty_incarnations() + 3 {
                for frame in 0..16 {
                    assert_eq!(plan.fault_for(worker, incarnation, frame, true), None);
                }
            }
        }
    }

    #[test]
    fn trigger_frames_cover_the_handshake_for_some_seed() {
        // Some (worker, incarnation, seed) hits frame 0 = Hello, so
        // crash-before-first-frame is exercised by campaigns.
        let hit = (0..64u64).any(|seed| {
            WorkerFaultPlan::new(seed).with_crashes(1).trigger_frame(0, 0) == 0
        });
        assert!(hit);
    }

    #[test]
    fn poisoned_worker_crashes_reads_only() {
        let plan = WorkerFaultPlan::new(1).with_poisoned(2);
        for incarnation in 0..6 {
            assert_eq!(plan.fault_for(2, incarnation, 0, false), None, "hello survives");
            for frame in 0..8 {
                assert_eq!(
                    plan.fault_for(2, incarnation, frame, true),
                    Some(WorkerFault::Crash)
                );
            }
        }
        assert_eq!(plan.fault_for(1, 0, 0, true), None, "other workers clean");
    }

    #[test]
    fn spec_roundtrips() {
        let plans = [
            WorkerFaultPlan::none(),
            WorkerFaultPlan::new(99)
                .with_crashes(1)
                .with_hangs(2)
                .with_corrupts(3)
                .with_slow(5, Duration::from_micros(250))
                .with_poisoned(1),
        ];
        for plan in plans {
            assert_eq!(WorkerFaultPlan::from_spec(&plan.to_spec()), Some(plan));
        }
        assert_eq!(WorkerFaultPlan::from_spec("seed=x"), None);
        assert_eq!(WorkerFaultPlan::from_spec("bogus=1"), None);
        assert_eq!(WorkerFaultPlan::from_spec("seed"), None);
    }
}
