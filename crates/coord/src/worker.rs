//! The worker side of the protocol: a `--worker` mode of the host
//! binary that owns one shard file and serves frame requests over
//! stdin/stdout until EOF or `Shutdown`.
//!
//! Fault injection lives *here* (and mirrored in the simulated
//! transport) so the coordinator under test is the same code that runs
//! in production: it only ever sees the symptoms — a closed pipe, a
//! missed deadline, a checksum mismatch — never the plan.

use crate::fault::{WorkerFault, WorkerFaultPlan};
use crate::frame::{
    self, corrupt_frame, encode_error_kind, read_frame, write_frame, Request, Response, ShardInfo,
};
use bellwether_storage::{DiskSource, TrainingSource};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::time::Duration;

/// First CLI argument that switches the host binary into worker mode.
pub const WORKER_FLAG: &str = "--worker";

/// Exit code used by injected crashes, distinct from success (0) and
/// argument errors (2) so tests can tell fault exits from bugs.
pub const FAULT_EXIT_CODE: i32 = 17;

/// How long an injected hang stalls. Far beyond any coordinator
/// deadline; the coordinator kills the process long before this
/// elapses, so the constant only bounds worker lifetime if the
/// coordinator itself dies.
const HANG_STALL: Duration = Duration::from_secs(600);

/// If the process was invoked as `<bin> --worker ...`, run the worker
/// loop and exit; otherwise return so the host's normal `main`
/// continues. Call this first in `main` of any binary the coordinator
/// may spawn (the CLI, examples, benches).
pub fn maybe_run_worker() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 2 && args[1] == WORKER_FLAG {
        std::process::exit(worker_main(&args[2..]));
    }
}

struct WorkerArgs {
    shard: PathBuf,
    worker_id: usize,
    incarnation: u32,
    plan: WorkerFaultPlan,
}

fn parse_args(args: &[String]) -> Result<WorkerArgs, String> {
    let mut shard = None;
    let mut worker_id = None;
    let mut incarnation = None;
    let mut plan = WorkerFaultPlan::none();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--shard" => shard = Some(PathBuf::from(value)),
            "--worker-id" => {
                worker_id = Some(value.parse().map_err(|_| "bad --worker-id".to_string())?)
            }
            "--incarnation" => {
                incarnation = Some(value.parse().map_err(|_| "bad --incarnation".to_string())?)
            }
            "--fault" => {
                plan = WorkerFaultPlan::from_spec(value)
                    .ok_or_else(|| format!("bad --fault spec: {value}"))?
            }
            other => return Err(format!("unknown worker flag {other}")),
        }
    }
    Ok(WorkerArgs {
        shard: shard.ok_or("missing --shard")?,
        worker_id: worker_id.ok_or("missing --worker-id")?,
        incarnation: incarnation.ok_or("missing --incarnation")?,
        plan,
    })
}

/// Entry point for `--worker` mode; returns the process exit code.
pub fn worker_main(args: &[String]) -> i32 {
    let args = match parse_args(args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bellwether worker: {msg}");
            return 2;
        }
    };
    let src = match DiskSource::open(&args.shard) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("bellwether worker: open {}: {err}", args.shard.display());
            return 2;
        }
    };
    match serve_loop(&src, &args) {
        Ok(()) => 0,
        Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => 0,
        Err(err) => {
            eprintln!("bellwether worker: {err}");
            1
        }
    }
}

fn serve_loop(src: &dyn TrainingSource, args: &WorkerArgs) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = BufReader::new(stdin.lock());
    let mut writer = BufWriter::new(stdout.lock());
    let mut frame_no: u64 = 0;
    loop {
        let (kind, payload) = read_frame(&mut reader)?;
        let req = Request::decode(kind, &payload)?;
        let is_read = matches!(req, Request::Read { .. });
        match args.plan.fault_for(args.worker_id, args.incarnation, frame_no, is_read) {
            Some(WorkerFault::Crash) => std::process::exit(FAULT_EXIT_CODE),
            Some(WorkerFault::Hang) => std::thread::sleep(HANG_STALL),
            Some(WorkerFault::Slow(delay)) => std::thread::sleep(delay),
            Some(WorkerFault::CorruptFrame) | None => {}
        }
        let corrupting = matches!(
            args.plan.fault_for(args.worker_id, args.incarnation, frame_no, is_read),
            Some(WorkerFault::CorruptFrame)
        );
        let (resp, done) = handle_request(src, &req);
        let (rkind, rpayload) = resp.encode();
        if corrupting {
            let mut bytes = frame::encode_frame(rkind, &rpayload);
            corrupt_frame(
                &mut bytes,
                args.plan.corruption_hash(args.worker_id, args.incarnation, frame_no),
            );
            writer.write_all(&bytes)?;
        } else {
            write_frame(&mut writer, rkind, &rpayload)?;
        }
        writer.flush()?;
        frame_no += 1;
        if done {
            return Ok(());
        }
    }
}

/// Serve one request against a shard source. Shared verbatim between
/// the process worker and the simulated transport so both paths answer
/// identically; returns the response and whether to exit after it.
pub fn handle_request(src: &dyn TrainingSource, req: &Request) -> (Response, bool) {
    match req {
        Request::Hello => {
            let regions = src.num_regions();
            let arity = if regions > 0 { src.region_coords(0).len() } else { 0 };
            let mut coords = Vec::with_capacity(regions * arity);
            for idx in 0..regions {
                coords.extend_from_slice(src.region_coords(idx));
            }
            (
                Response::ShardInfo(ShardInfo {
                    regions: regions as u32,
                    p: src.feature_arity() as u32,
                    arity: arity as u32,
                    coords,
                }),
                false,
            )
        }
        Request::Read { local } => {
            let idx = *local as usize;
            if idx >= src.num_regions() {
                return (
                    Response::ReadErr {
                        code: encode_error_kind(io::ErrorKind::NotFound),
                        message: format!("region {idx} out of range"),
                    },
                    false,
                );
            }
            match src.read_region(idx) {
                Ok(block) => {
                    let mut bytes = Vec::new();
                    bellwether_storage::format::encode_block_v2(&block, &mut bytes);
                    (Response::Block(bytes), false)
                }
                Err(err) => (
                    Response::ReadErr {
                        code: encode_error_kind(err.kind()),
                        message: err.to_string(),
                    },
                    false,
                ),
            }
        }
        Request::Ping { nonce } => (Response::Pong { nonce: *nonce }, false),
        Request::Shutdown => (
            Response::Bye { peak_rss_bytes: peak_rss_bytes().unwrap_or(0) },
            true,
        ),
    }
}

/// Peak resident set of this process in bytes (`VmHWM` on Linux;
/// `None` elsewhere or if unreadable).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_storage::MemorySource;

    fn tiny_source() -> MemorySource {
        use bellwether_storage::RegionBlock;
        let blocks = vec![
            RegionBlock::from_columns(
                vec![1, 10],
                2,
                vec![100, 101],
                vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                vec![0.5, 0.7],
            ),
            RegionBlock::from_columns(vec![2, 20], 2, vec![102], vec![vec![5.0], vec![6.0]], vec![0.9]),
        ];
        MemorySource::new(blocks)
    }

    #[test]
    fn hello_reports_shard_metadata() {
        let src = tiny_source();
        let (resp, done) = handle_request(&src, &Request::Hello);
        assert!(!done);
        match resp {
            Response::ShardInfo(info) => {
                assert_eq!(info.regions, 2);
                assert_eq!(info.p, 2);
                assert_eq!(info.arity, 2);
                assert_eq!(info.coords, vec![1, 10, 2, 20]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn read_roundtrips_block_bytes() {
        let src = tiny_source();
        let (resp, _) = handle_request(&src, &Request::Read { local: 0 });
        let bytes = match resp {
            Response::Block(b) => b,
            other => panic!("unexpected response {other:?}"),
        };
        let decoded = bellwether_storage::format::decode_block_v2(&bytes).unwrap();
        let direct = src.read_region(0).unwrap();
        assert_eq!(decoded.region, direct.region);
        assert_eq!(decoded.targets, direct.targets);
    }

    #[test]
    fn out_of_range_read_is_a_classified_error() {
        let src = tiny_source();
        let (resp, done) = handle_request(&src, &Request::Read { local: 99 });
        assert!(!done);
        match resp {
            Response::ReadErr { code, .. } => {
                assert_eq!(frame::decode_error_kind(code), io::ErrorKind::NotFound);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn shutdown_acknowledges_and_terminates() {
        let src = tiny_source();
        let (resp, done) = handle_request(&src, &Request::Shutdown);
        assert!(done);
        assert!(matches!(resp, Response::Bye { .. }));
    }

    #[test]
    fn arg_parsing_rejects_malformed_invocations() {
        let ok = parse_args(&[
            "--shard".into(),
            "/tmp/s.bwtd".into(),
            "--worker-id".into(),
            "3".into(),
            "--incarnation".into(),
            "1".into(),
            "--fault".into(),
            WorkerFaultPlan::new(5).with_crashes(1).to_spec(),
        ])
        .unwrap();
        assert_eq!(ok.worker_id, 3);
        assert_eq!(ok.incarnation, 1);
        assert_eq!(ok.plan.crashes, 1);
        assert!(parse_args(&["--shard".into()]).is_err());
        assert!(parse_args(&["--bogus".into(), "1".into()]).is_err());
        assert!(parse_args(&[]).is_err());
    }
}
