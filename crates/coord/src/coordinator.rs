//! The coordinator: one [`Transport`] per shard, presented to the scan
//! engine as a plain [`TrainingSource`].
//!
//! Determinism comes from a clean division of labour. The transport
//! layer is allowed to be messy — workers crash, hang, and corrupt
//! frames at times chosen by a seeded plan — but every region read
//! either eventually returns *the* canonical block bytes (checksummed
//! end to end: v2 block CRC inside a frame CRC) or fails with a
//! classified error after a bounded number of restarts. What the scan
//! engine then does with those blocks (`shard_starts()`-aligned
//! two-level merge in ascending shard order) is untouched, so a
//! coordinator-backed run is byte-identical to the in-process
//! `ShardedSource` path whenever every read succeeds, and degrades
//! through `ScanPolicy::SkipUnreadable` with exact per-region
//! accounting when a shard's restart budget is exhausted.

use crate::fault::WorkerFaultPlan;
use crate::frame::{decode_error_kind, Request, Response};
use crate::transport::{ProcessSpawner, SimSpawner, Transport, WorkerSpawner};
use bellwether_obs::{names, Counter, MetricsSnapshot, Registry};
use bellwether_storage::format::decode_block_v2;
use bellwether_storage::{
    IoStats, RegionBlock, RetryPolicy, ShardManifest, TrainingSource, MANIFEST_NAME,
};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Coordinator tuning: reply deadline + restart budget/backoff.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    deadline: Duration,
    restart_policy: RetryPolicy,
}

impl Default for CoordinatorConfig {
    /// 5 s reply deadline; default [`RetryPolicy`] restart budget
    /// (4 attempts, 1 ms base backoff doubling to 50 ms).
    fn default() -> Self {
        CoordinatorConfig {
            deadline: Duration::from_secs(5),
            restart_policy: RetryPolicy::default(),
        }
    }
}

impl CoordinatorConfig {
    /// Default config (5 s deadline, default restart policy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-reply deadline; a worker that misses it is treated as hung,
    /// killed, and restarted against the budget. Must be non-zero.
    pub fn deadline(mut self, d: Duration) -> io::Result<Self> {
        if d.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "coordinator deadline must be non-zero",
            ));
        }
        self.deadline = d;
        Ok(self)
    }

    /// Restart budget and backoff schedule for worker incidents.
    /// `max_attempts` bounds tries *per read* (spawn + exchange); the
    /// exponential backoff + deterministic jitter between restarts
    /// reuses the exact [`RetryPolicy`] math the storage layer uses for
    /// region-read retries.
    pub fn restart_policy(mut self, policy: RetryPolicy) -> Self {
        self.restart_policy = policy;
        self
    }

    /// The configured deadline.
    pub fn deadline_value(&self) -> Duration {
        self.deadline
    }

    /// The configured restart policy.
    pub fn restart_policy_value(&self) -> &RetryPolicy {
        &self.restart_policy
    }
}

/// Coordinator-side counters, bound once to a registry.
struct CoordCounters {
    workers_spawned: Counter,
    worker_restarts: Counter,
    worker_crashes: Counter,
    worker_timeouts: Counter,
    corrupt_frames: Counter,
    frames_sent: Counter,
    frames_received: Counter,
    reads: Counter,
    shards_dead: Counter,
    heartbeats: Counter,
}

impl CoordCounters {
    fn in_registry(reg: &Registry) -> CoordCounters {
        CoordCounters {
            workers_spawned: reg.counter(names::COORD_WORKERS_SPAWNED),
            worker_restarts: reg.counter(names::COORD_WORKER_RESTARTS),
            worker_crashes: reg.counter(names::COORD_WORKER_CRASHES),
            worker_timeouts: reg.counter(names::COORD_WORKER_TIMEOUTS),
            corrupt_frames: reg.counter(names::COORD_CORRUPT_FRAMES),
            frames_sent: reg.counter(names::COORD_FRAMES_SENT),
            frames_received: reg.counter(names::COORD_FRAMES_RECEIVED),
            reads: reg.counter(names::COORD_READS),
            shards_dead: reg.counter(names::COORD_SHARDS_DEAD),
            heartbeats: reg.counter(names::COORD_HEARTBEATS),
        }
    }
}

/// One shard's worker slot: the live transport (if any), the spawn
/// count (= next incarnation), and whether the shard has been declared
/// dead after exhausting its restart budget.
struct WorkerSlot {
    transport: Option<Box<dyn Transport>>,
    spawns: u32,
    dead: bool,
}

/// Exit record for one worker after [`Coordinator::shutdown`].
#[derive(Debug, Clone)]
pub struct WorkerExit {
    /// Worker (= shard) index.
    pub worker: usize,
    /// Total spawns over the run (1 = never restarted).
    pub spawns: u32,
    /// Peak RSS the final incarnation reported in its `Bye`, if it
    /// exited gracefully.
    pub peak_rss_bytes: Option<u64>,
}

/// A multi-worker shard coordinator that implements [`TrainingSource`].
///
/// Region metadata (coordinates, counts) is collected once per worker
/// at handshake and verified against the manifest, so the scan engine's
/// metadata queries never touch a worker; only `read_region` crosses
/// the transport.
pub struct Coordinator {
    spawner: Box<dyn WorkerSpawner>,
    manifest: ShardManifest,
    starts: Vec<usize>,
    total: usize,
    coords_flat: Vec<u32>,
    arity: usize,
    index: HashMap<Vec<u32>, usize>,
    slots: Vec<Mutex<WorkerSlot>>,
    config: CoordinatorConfig,
    stats: Arc<IoStats>,
    c: CoordCounters,
}

fn lock_slot(slot: &Mutex<WorkerSlot>) -> MutexGuard<'_, WorkerSlot> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

fn shard_files(dir: &Path, manifest: &ShardManifest) -> Vec<PathBuf> {
    manifest.shards.iter().map(|m| dir.join(&m.file)).collect()
}

impl Coordinator {
    /// Open the sharded dataset at `dir` and manage one OS process per
    /// shard, spawned from `bin` in `--worker` mode.
    pub fn spawn_processes(
        dir: &Path,
        bin: &Path,
        plan: WorkerFaultPlan,
        config: CoordinatorConfig,
    ) -> io::Result<Coordinator> {
        Self::spawn_processes_with_registry(dir, bin, plan, config, &Registry::new())
    }

    /// [`Self::spawn_processes`] with coordinator counters (and IO
    /// stats) bound into `reg`.
    pub fn spawn_processes_with_registry(
        dir: &Path,
        bin: &Path,
        plan: WorkerFaultPlan,
        config: CoordinatorConfig,
        reg: &Registry,
    ) -> io::Result<Coordinator> {
        let manifest = ShardManifest::read(&dir.join(MANIFEST_NAME))?;
        let files = shard_files(dir, &manifest);
        let spawner = ProcessSpawner::new(bin.to_path_buf(), files, plan);
        Self::connect(Box::new(spawner), manifest, config, reg)
    }

    /// Open the sharded dataset at `dir` with deterministic in-process
    /// simulated workers — the replayable fault-campaign mode.
    pub fn simulated(
        dir: &Path,
        plan: WorkerFaultPlan,
        config: CoordinatorConfig,
    ) -> io::Result<Coordinator> {
        Self::simulated_with_registry(dir, plan, config, &Registry::new())
    }

    /// [`Self::simulated`] with counters bound into `reg`.
    pub fn simulated_with_registry(
        dir: &Path,
        plan: WorkerFaultPlan,
        config: CoordinatorConfig,
        reg: &Registry,
    ) -> io::Result<Coordinator> {
        let manifest = ShardManifest::read(&dir.join(MANIFEST_NAME))?;
        let files = shard_files(dir, &manifest);
        let spawner = SimSpawner::new(files, plan);
        Self::connect(Box::new(spawner), manifest, config, reg)
    }

    /// Handshake every worker (with restarts against the budget) and
    /// assemble the global region index.
    pub fn connect(
        spawner: Box<dyn WorkerSpawner>,
        manifest: ShardManifest,
        config: CoordinatorConfig,
        reg: &Registry,
    ) -> io::Result<Coordinator> {
        if manifest.generation > 0 || !manifest.overlays.is_empty() {
            // Workers read base shard files directly and know nothing of
            // overlay redirects; serving an appended-over layout here
            // would silently resurrect the replaced blocks.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "coordinator does not serve appended-over layouts \
                     (manifest generation {}); run a compaction first",
                    manifest.generation
                ),
            ));
        }
        let c = CoordCounters::in_registry(reg);
        let stats = IoStats::in_registry(reg);
        let starts = manifest.shard_starts();
        let total = manifest.total_regions() as usize;

        let mut coords_flat = Vec::new();
        let mut arity = manifest.arity as usize;
        let mut slots = Vec::with_capacity(manifest.shards.len());

        for (w, meta) in manifest.shards.iter().enumerate() {
            let mut slot = WorkerSlot { transport: None, spawns: 0, dead: false };
            let info = Self::exchange_with_restarts(
                &*spawner,
                &mut slot,
                w,
                &config,
                &c,
                &Request::Hello,
            )
            .and_then(|resp| match resp {
                Response::ShardInfo(info) => Ok(info),
                other => Err(protocol_error(&other)),
            })?;
            if info.regions as u64 != meta.regions {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "worker {w} reports {} regions, manifest says {}",
                        info.regions, meta.regions
                    ),
                ));
            }
            if info.regions > 0 {
                if info.p != manifest.p || info.arity as usize != arity {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("worker {w} shard shape disagrees with manifest"),
                    ));
                }
                arity = info.arity as usize;
            }
            coords_flat.extend_from_slice(&info.coords);
            slots.push(Mutex::new(slot));
        }

        if coords_flat.len() != total * arity && total > 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "collected coordinates disagree with manifest region count",
            ));
        }

        let index = (0..total)
            .map(|i| (coords_flat[i * arity..(i + 1) * arity].to_vec(), i))
            .collect();

        Ok(Coordinator {
            spawner,
            manifest,
            starts,
            total,
            coords_flat,
            arity,
            index,
            slots,
            config,
            stats,
            c,
        })
    }

    /// The manifest this coordinator serves.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of workers (= shards).
    pub fn num_workers(&self) -> usize {
        self.slots.len()
    }

    /// Workers currently declared dead (restart budget exhausted).
    pub fn dead_workers(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&w| lock_slot(&self.slots[w]).dead)
            .collect()
    }

    /// Global region indices owned by worker `w` — the exact set a
    /// `SkipUnreadable` scan reports as skipped when this worker's
    /// budget is exhausted.
    pub fn regions_of_worker(&self, w: usize) -> std::ops::Range<usize> {
        let start = self.starts[w];
        let end = if w + 1 < self.starts.len() { self.starts[w + 1] } else { self.total };
        start..end
    }

    /// Spawn (or reuse) the slot's transport for its next incarnation.
    fn ensure_transport<'t>(
        spawner: &dyn WorkerSpawner,
        slot: &'t mut WorkerSlot,
        w: usize,
        c: &CoordCounters,
    ) -> io::Result<&'t mut Box<dyn Transport>> {
        if slot.transport.is_none() {
            let incarnation = slot.spawns;
            let t = spawner.spawn(w, incarnation)?;
            slot.spawns += 1;
            c.workers_spawned.inc();
            slot.transport = Some(t);
        }
        Ok(slot.transport.as_mut().expect("just ensured"))
    }

    /// One request/response exchange with restart-on-incident, the
    /// heart of the robustness layer. A transport incident (closed
    /// stream, missed deadline, corrupt frame) kills the incarnation,
    /// counts a restart, sleeps the policy's backoff (skipped under
    /// simulation), and retries until the budget is spent. A
    /// `ReadErr` response is *not* an incident: the worker is healthy
    /// and the error is returned to the caller as-is.
    fn exchange_with_restarts(
        spawner: &dyn WorkerSpawner,
        slot: &mut WorkerSlot,
        w: usize,
        config: &CoordinatorConfig,
        c: &CoordCounters,
        req: &Request,
    ) -> io::Result<Response> {
        let policy = &config.restart_policy;
        let mut attempt: u32 = 1;
        loop {
            let outcome = Self::ensure_transport(spawner, slot, w, c).and_then(|t| {
                c.frames_sent.inc();
                t.send(req)?;
                let resp = t.recv(config.deadline)?;
                c.frames_received.inc();
                Ok(resp)
            });
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(err) => {
                    match err.kind() {
                        io::ErrorKind::TimedOut => c.worker_timeouts.inc(),
                        io::ErrorKind::InvalidData => c.corrupt_frames.inc(),
                        _ => c.worker_crashes.inc(),
                    }
                    if let Some(mut t) = slot.transport.take() {
                        t.terminate();
                    }
                    if attempt >= policy.max_attempts() {
                        slot.dead = true;
                        c.shards_dead.inc();
                        return Err(io::Error::other(format!(
                            "worker {w} restart budget exhausted after {attempt} attempts: {err}"
                        )));
                    }
                    let backoff = policy.backoff_for(w, attempt);
                    if !spawner.is_simulated() && !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    c.worker_restarts.inc();
                    attempt += 1;
                }
            }
        }
    }

    /// Ping every live worker once; returns the number that answered.
    /// Workers that miss the deadline are terminated and charged a
    /// restart on their next read, exactly like a read incident.
    pub fn heartbeat(&self) -> usize {
        let mut alive = 0;
        for (w, slot) in self.slots.iter().enumerate() {
            let mut slot = lock_slot(slot);
            if slot.dead {
                continue;
            }
            let Some(t) = slot.transport.as_mut() else { continue };
            let nonce = 0x4845_4152_5442_4541u64 ^ (w as u64);
            self.c.frames_sent.inc();
            let ok = t
                .send(&Request::Ping { nonce })
                .and_then(|()| t.recv(self.config.deadline))
                .map(|resp| matches!(resp, Response::Pong { nonce: n } if n == nonce))
                .unwrap_or(false);
            if ok {
                self.c.frames_received.inc();
                self.c.heartbeats.inc();
                alive += 1;
            } else {
                self.c.worker_timeouts.inc();
                if let Some(mut t) = slot.transport.take() {
                    t.terminate();
                }
            }
        }
        alive
    }

    /// Gracefully shut every worker down (`Shutdown` → `Bye`),
    /// collecting spawn counts and reported peak RSS.
    pub fn shutdown(self) -> Vec<WorkerExit> {
        let mut exits = Vec::with_capacity(self.slots.len());
        for (w, slot) in self.slots.into_iter().enumerate() {
            let mut slot = lock_slot(&slot);
            let mut peak = None;
            if let Some(t) = slot.transport.as_mut() {
                self.c.frames_sent.inc();
                if t.send(&Request::Shutdown).is_ok() {
                    if let Ok(Response::Bye { peak_rss_bytes }) = t.recv(self.config.deadline) {
                        self.c.frames_received.inc();
                        peak = Some(peak_rss_bytes);
                    }
                }
            }
            if let Some(mut t) = slot.transport.take() {
                t.terminate();
            }
            exits.push(WorkerExit { worker: w, spawns: slot.spawns, peak_rss_bytes: peak });
        }
        exits
    }

    /// Which worker owns global region `idx`, and its shard-local
    /// index.
    fn locate(&self, idx: usize) -> (usize, u32) {
        let s = self.starts.partition_point(|&start| start <= idx) - 1;
        (s, (idx - self.starts[s]) as u32)
    }
}

fn protocol_error(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response kind: {resp:?}"),
    )
}

impl TrainingSource for Coordinator {
    fn num_regions(&self) -> usize {
        self.total
    }

    fn feature_arity(&self) -> usize {
        self.manifest.p as usize
    }

    fn region_coords(&self, idx: usize) -> &[u32] {
        &self.coords_flat[idx * self.arity..(idx + 1) * self.arity]
    }

    fn read_region(&self, idx: usize) -> io::Result<Arc<RegionBlock>> {
        if idx >= self.total {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("region {idx} out of range"),
            ));
        }
        let (w, local) = self.locate(idx);
        let mut slot = lock_slot(&self.slots[w]);
        if slot.dead {
            // Fail fast: once the budget is spent the shard stays dead
            // for the rest of the run, so a SkipUnreadable scan skips
            // exactly this worker's regions without re-paying restarts.
            return Err(io::Error::other(format!(
                "worker {w} is dead (restart budget exhausted)"
            )));
        }
        self.c.reads.inc();
        let resp = Self::exchange_with_restarts(
            &*self.spawner,
            &mut slot,
            w,
            &self.config,
            &self.c,
            &Request::Read { local },
        )?;
        match resp {
            Response::Block(bytes) => {
                let block = decode_block_v2(&bytes)?;
                self.stats
                    .record_region_read(bytes.len() as u64, block.n() as u64);
                Ok(Arc::new(block))
            }
            Response::ReadErr { code, message } => {
                let kind = decode_error_kind(code);
                if kind == io::ErrorKind::InvalidData {
                    self.stats.record_corrupt_block();
                }
                Err(io::Error::new(kind, format!("worker {w}: {message}")))
            }
            other => Err(protocol_error(&other)),
        }
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.stats.snapshot();
        for (name, counter) in [
            (names::COORD_WORKERS_SPAWNED, &self.c.workers_spawned),
            (names::COORD_WORKER_RESTARTS, &self.c.worker_restarts),
            (names::COORD_WORKER_CRASHES, &self.c.worker_crashes),
            (names::COORD_WORKER_TIMEOUTS, &self.c.worker_timeouts),
            (names::COORD_CORRUPT_FRAMES, &self.c.corrupt_frames),
            (names::COORD_FRAMES_SENT, &self.c.frames_sent),
            (names::COORD_FRAMES_RECEIVED, &self.c.frames_received),
            (names::COORD_READS, &self.c.reads),
            (names::COORD_SHARDS_DEAD, &self.c.shards_dead),
            (names::COORD_HEARTBEATS, &self.c.heartbeats),
        ] {
            snap.counters.push((name.to_string(), counter.get()));
        }
        snap
    }

    fn find_region(&self, coords: &[u32]) -> Option<usize> {
        self.index.get(coords).copied()
    }

    fn total_examples(&self) -> io::Result<u64> {
        Ok(self.manifest.total_examples())
    }

    fn shard_starts(&self) -> Option<Vec<usize>> {
        Some(self.starts.clone())
    }
}
