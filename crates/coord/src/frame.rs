//! The coordinator ↔ worker wire protocol: length-prefixed,
//! CRC-32-framed messages over a byte stream (worker stdin/stdout for
//! real processes, an in-memory queue for the simulated transport).
//!
//! A frame is
//!
//! ```text
//! | len: u32 LE | kind: u8 | payload: len bytes | crc: u32 LE |
//! ```
//!
//! where `crc` covers `kind` plus `payload` (the same slice-by-8 CRC-32
//! as the v2 block format). Every decode path is *total*: truncation,
//! oversize and checksum mismatch all surface as classified
//! `io::Error`s, never a panic — a flipped bit anywhere in a frame body
//! is caught by the checksum before any field is interpreted.
//!
//! Blocks travel as their v2 on-disk encoding
//! ([`bellwether_storage::format::encode_block_v2`]), so the bytes the
//! coordinator decodes are exactly the bytes a local `DiskSource` would
//! have decoded — the foundation of the bit-identity guarantee.

use bellwether_storage::crc32::{crc32_finish, crc32_update, CRC_INIT};
use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload; anything larger is rejected as
/// structurally invalid before allocation.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Request: handshake; the worker answers with [`Response::ShardInfo`].
pub const REQ_HELLO: u8 = 0x01;
/// Request: read one region by shard-local index.
pub const REQ_READ: u8 = 0x02;
/// Request: liveness probe; the worker echoes the nonce.
pub const REQ_PING: u8 = 0x03;
/// Request: graceful shutdown; the worker answers [`Response::Bye`].
pub const REQ_SHUTDOWN: u8 = 0x04;
/// Response to [`REQ_HELLO`].
pub const RESP_SHARD_INFO: u8 = 0x81;
/// Response to [`REQ_READ`]: a v2-encoded region block.
pub const RESP_BLOCK: u8 = 0x82;
/// Response to [`REQ_PING`].
pub const RESP_PONG: u8 = 0x83;
/// Response to [`REQ_SHUTDOWN`]; carries the worker's peak RSS.
pub const RESP_BYE: u8 = 0x84;
/// Response to [`REQ_READ`] whose shard-local read failed; carries the
/// classified error.
pub const RESP_READ_ERR: u8 = 0x85;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn body_crc(kind: u8, payload: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_update(CRC_INIT, &[kind]), payload))
}

/// Encode one frame to bytes.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out.extend_from_slice(&body_crc(kind, payload).to_le_bytes());
    out
}

/// Write one frame to a stream (no flush; callers batch then flush).
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    w.write_all(&body_crc(kind, payload).to_le_bytes())
}

/// Read and checksum-validate one frame from a stream. Truncation maps
/// to `UnexpectedEof` (a dead peer), a bad checksum or oversize length
/// to `InvalidData` (a corrupt frame).
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let len = u32::from_le_bytes(word) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(invalid(format!("frame payload of {len} bytes exceeds cap")));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    r.read_exact(&mut word)?;
    let stored = u32::from_le_bytes(word);
    if body_crc(kind[0], &payload) != stored {
        return Err(invalid("corrupt frame (checksum mismatch)"));
    }
    Ok((kind[0], payload))
}

/// Decode one full frame from a byte buffer (the simulated transport's
/// channel); identical validation to [`read_frame`].
pub fn decode_frame(buf: &[u8]) -> io::Result<(u8, Vec<u8>)> {
    let mut cursor = buf;
    let frame = read_frame(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(invalid("trailing bytes after frame"));
    }
    Ok(frame)
}

/// Flip one deterministically chosen bit of an encoded frame, past the
/// length prefix so the stream stays frame-synchronized — the receiver
/// sees a clean length, then a checksum mismatch. Used by the fault
/// plan's corrupt-frame injection.
pub fn corrupt_frame(buf: &mut [u8], h: u64) {
    debug_assert!(buf.len() > 4, "a frame has at least kind + crc after the length");
    let bits = (buf.len() - 4) * 8;
    let bit = (h % bits as u64) as usize;
    buf[4 + bit / 8] ^= 1 << (bit % 8);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(invalid("truncated message payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(invalid("trailing bytes in message payload"));
        }
        Ok(())
    }
}

/// A coordinator → worker message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake: ask for the shard's metadata (doubles as the liveness
    /// probe after every spawn and restart).
    Hello,
    /// Read the region at this shard-local index.
    Read {
        /// Shard-local region index.
        local: u32,
    },
    /// Heartbeat probe; the worker must echo `nonce`.
    Ping {
        /// Echo token.
        nonce: u64,
    },
    /// Ask the worker to report its peak RSS and exit cleanly.
    Shutdown,
}

impl Request {
    /// Frame kind + payload for this request.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Hello => (REQ_HELLO, Vec::new()),
            Request::Read { local } => (REQ_READ, local.to_le_bytes().to_vec()),
            Request::Ping { nonce } => (REQ_PING, nonce.to_le_bytes().to_vec()),
            Request::Shutdown => (REQ_SHUTDOWN, Vec::new()),
        }
    }

    /// Decode a request from a validated frame; unknown kinds and
    /// malformed payloads are classified errors.
    pub fn decode(kind: u8, payload: &[u8]) -> io::Result<Request> {
        let mut cur = Cursor { buf: payload, pos: 0 };
        let req = match kind {
            REQ_HELLO => Request::Hello,
            REQ_READ => Request::Read { local: cur.u32()? },
            REQ_PING => Request::Ping { nonce: cur.u64()? },
            REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(invalid(format!("unknown request kind {other:#04x}"))),
        };
        cur.done()?;
        Ok(req)
    }
}

/// Shard metadata returned by the handshake: enough for the coordinator
/// to serve every [`bellwether_storage::TrainingSource`] metadata query
/// without touching the worker again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Regions stored in this shard.
    pub regions: u32,
    /// Feature arity.
    pub p: u32,
    /// Region-coordinate arity.
    pub arity: u32,
    /// Flattened coordinates, `regions × arity`, ascending local order.
    pub coords: Vec<u32>,
}

/// A worker → coordinator message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake answer.
    ShardInfo(ShardInfo),
    /// A successfully read region, as its v2 block encoding.
    Block(Vec<u8>),
    /// Heartbeat echo.
    Pong {
        /// The echoed token.
        nonce: u64,
    },
    /// Graceful-shutdown acknowledgement.
    Bye {
        /// The worker's peak resident set in bytes (0 if unknown).
        peak_rss_bytes: u64,
    },
    /// A shard-local read failed; the classified error travels back so
    /// the coordinator can distinguish data faults (corrupt block on
    /// the worker's disk) from transport faults (dead/hung worker).
    ReadErr {
        /// Encoded [`io::ErrorKind`]; see [`encode_error_kind`].
        code: u8,
        /// Human-readable error message.
        message: String,
    },
}

impl Response {
    /// Frame kind + payload for this response.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::ShardInfo(info) => {
                let mut p = Vec::with_capacity(12 + info.coords.len() * 4);
                p.extend_from_slice(&info.regions.to_le_bytes());
                p.extend_from_slice(&info.p.to_le_bytes());
                p.extend_from_slice(&info.arity.to_le_bytes());
                for c in &info.coords {
                    p.extend_from_slice(&c.to_le_bytes());
                }
                (RESP_SHARD_INFO, p)
            }
            Response::Block(bytes) => (RESP_BLOCK, bytes.clone()),
            Response::Pong { nonce } => (RESP_PONG, nonce.to_le_bytes().to_vec()),
            Response::Bye { peak_rss_bytes } => (RESP_BYE, peak_rss_bytes.to_le_bytes().to_vec()),
            Response::ReadErr { code, message } => {
                let mut p = Vec::with_capacity(1 + message.len());
                p.push(*code);
                p.extend_from_slice(message.as_bytes());
                (RESP_READ_ERR, p)
            }
        }
    }

    /// Decode a response from a validated frame.
    pub fn decode(kind: u8, payload: &[u8]) -> io::Result<Response> {
        match kind {
            RESP_SHARD_INFO => {
                let mut cur = Cursor { buf: payload, pos: 0 };
                let regions = cur.u32()?;
                let p = cur.u32()?;
                let arity = cur.u32()?;
                let want = (regions as usize)
                    .checked_mul(arity as usize)
                    .ok_or_else(|| invalid("shard info coordinate count overflows"))?;
                let mut coords = Vec::with_capacity(want.min(payload.len() / 4));
                for _ in 0..want {
                    coords.push(cur.u32()?);
                }
                cur.done()?;
                Ok(Response::ShardInfo(ShardInfo { regions, p, arity, coords }))
            }
            RESP_BLOCK => Ok(Response::Block(payload.to_vec())),
            RESP_PONG => {
                let mut cur = Cursor { buf: payload, pos: 0 };
                let nonce = cur.u64()?;
                cur.done()?;
                Ok(Response::Pong { nonce })
            }
            RESP_BYE => {
                let mut cur = Cursor { buf: payload, pos: 0 };
                let peak_rss_bytes = cur.u64()?;
                cur.done()?;
                Ok(Response::Bye { peak_rss_bytes })
            }
            RESP_READ_ERR => {
                if payload.is_empty() {
                    return Err(invalid("read-error payload missing code"));
                }
                let message = std::str::from_utf8(&payload[1..])
                    .map_err(|_| invalid("read-error message not utf-8"))?
                    .to_string();
                Ok(Response::ReadErr { code: payload[0], message })
            }
            other => Err(invalid(format!("unknown response kind {other:#04x}"))),
        }
    }
}

/// Encode an [`io::ErrorKind`] for the wire; kinds without a code map
/// to 0 (`Other`).
pub fn encode_error_kind(kind: io::ErrorKind) -> u8 {
    match kind {
        io::ErrorKind::InvalidData => 1,
        io::ErrorKind::NotFound => 2,
        io::ErrorKind::Interrupted => 3,
        io::ErrorKind::TimedOut => 4,
        io::ErrorKind::WouldBlock => 5,
        io::ErrorKind::UnexpectedEof => 6,
        io::ErrorKind::PermissionDenied => 7,
        _ => 0,
    }
}

/// Inverse of [`encode_error_kind`].
pub fn decode_error_kind(code: u8) -> io::ErrorKind {
    match code {
        1 => io::ErrorKind::InvalidData,
        2 => io::ErrorKind::NotFound,
        3 => io::ErrorKind::Interrupted,
        4 => io::ErrorKind::TimedOut,
        5 => io::ErrorKind::WouldBlock,
        6 => io::ErrorKind::UnexpectedEof,
        7 => io::ErrorKind::PermissionDenied,
        _ => io::ErrorKind::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        for (kind, payload) in [
            (REQ_HELLO, vec![]),
            (REQ_READ, vec![1, 2, 3, 4]),
            (RESP_BLOCK, (0..=255u8).collect::<Vec<_>>()),
        ] {
            let buf = encode_frame(kind, &payload);
            assert_eq!(decode_frame(&buf).unwrap(), (kind, payload.clone()));
            // Streaming reader sees the same frame.
            let mut cursor = &buf[..];
            assert_eq!(read_frame(&mut cursor).unwrap(), (kind, payload));
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let buf = encode_frame(REQ_READ, &7u32.to_le_bytes());
        // Flips past the length prefix break the checksum; flips inside
        // the prefix change the framing and are caught as truncation or
        // oversize or trailing bytes. Either way: an error, no panic.
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let buf = encode_frame(RESP_PONG, &42u64.to_le_bytes());
        for len in 0..buf.len() {
            assert!(decode_frame(&buf[..len]).is_err(), "truncation to {len}");
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut buf = encode_frame(REQ_HELLO, &[]);
        buf[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = decode_frame(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds cap"), "{err}");
    }

    #[test]
    fn corrupt_frame_helper_breaks_the_checksum_not_the_framing() {
        let clean = encode_frame(RESP_BLOCK, b"block bytes here");
        for h in 0..64u64 {
            let mut bad = clean.clone();
            corrupt_frame(&mut bad, h);
            assert_eq!(bad[..4], clean[..4], "length prefix untouched");
            let err = decode_frame(&bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "h={h}");
        }
    }

    #[test]
    fn messages_roundtrip() {
        let reqs = [
            Request::Hello,
            Request::Read { local: 9 },
            Request::Ping { nonce: 0xDEAD_BEEF },
            Request::Shutdown,
        ];
        for req in reqs {
            let (kind, payload) = req.encode();
            assert_eq!(Request::decode(kind, &payload).unwrap(), req);
        }
        let resps = [
            Response::ShardInfo(ShardInfo {
                regions: 2,
                p: 3,
                arity: 2,
                coords: vec![1, 2, 3, 4],
            }),
            Response::Block(vec![1, 2, 3]),
            Response::Pong { nonce: 7 },
            Response::Bye { peak_rss_bytes: 1 << 20 },
            Response::ReadErr { code: 1, message: "corrupt".into() },
        ];
        for resp in resps {
            let (kind, payload) = resp.encode();
            assert_eq!(Response::decode(kind, &payload).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_messages_are_classified_never_panic() {
        assert!(Request::decode(0x7f, &[]).is_err(), "unknown request kind");
        assert!(Request::decode(REQ_READ, &[1, 2]).is_err(), "short read payload");
        assert!(Request::decode(REQ_HELLO, &[9]).is_err(), "trailing bytes");
        assert!(Response::decode(0x10, &[]).is_err(), "unknown response kind");
        assert!(Response::decode(RESP_READ_ERR, &[]).is_err(), "missing code");
        assert!(
            Response::decode(RESP_READ_ERR, &[0, 0xff, 0xfe]).is_err(),
            "non-utf8 message"
        );
        // Coordinate count that would overflow is rejected structurally.
        let mut p = Vec::new();
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        p.extend_from_slice(&2u32.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(RESP_SHARD_INFO, &p).is_err());
    }

    #[test]
    fn error_kinds_roundtrip_through_codes() {
        for kind in [
            io::ErrorKind::InvalidData,
            io::ErrorKind::NotFound,
            io::ErrorKind::Interrupted,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::PermissionDenied,
        ] {
            assert_eq!(decode_error_kind(encode_error_kind(kind)), kind);
        }
        assert_eq!(decode_error_kind(encode_error_kind(io::ErrorKind::Other)), io::ErrorKind::Other);
        assert_eq!(decode_error_kind(200), io::ErrorKind::Other);
    }
}
