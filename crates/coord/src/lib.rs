//! Deterministic multi-process shard coordinator with a fault-injected
//! worker lifecycle.
//!
//! PR 8's sharded training path proved that per-shard partials merged
//! in ascending shard order are bit-identical at any shards × threads —
//! but everything ran inside one process. This crate moves each shard
//! behind its own OS process (the host binary re-invoked in
//! [`worker::WORKER_FLAG`] mode) and wraps the whole fleet in a
//! robustness layer, while presenting the cluster to the scan engine as
//! one ordinary `TrainingSource`:
//!
//! * **Framed protocol** ([`frame`]) — length-prefixed, CRC-32-framed
//!   request/response messages over worker stdin/stdout; blocks travel
//!   in their checksummed v2 on-disk encoding, so payload integrity is
//!   verified twice (frame CRC, then block CRC).
//! * **Seeded fault plan** ([`fault`]) — crash / hang / corrupt-frame /
//!   slow-reply decisions as a pure function of `(seed, worker,
//!   incarnation, frame)`, organized in incarnation bands so a
//!   sufficient restart budget provably converges.
//! * **Worker lifecycle** ([`coordinator`]) — per-reply deadlines,
//!   heartbeats, bounded restart with the *same* exponential
//!   backoff + deterministic jitter the storage layer uses for region
//!   reads (`RetryPolicy`), and fail-fast dead-shard state that turns
//!   an exhausted budget into exact `SkipUnreadable` skip accounting.
//! * **Simulated transport** ([`transport`]) — an in-process twin that
//!   replays the same plan with fault symptoms mapped onto channel
//!   state instead of wall time: crash = closed channel, hang =
//!   instant `TimedOut`. Every campaign is replayable in `cargo test`
//!   with zero sleeps and exact counter assertions.
//!
//! Determinism argument, in one line: the transport may be chaotic, but
//! a region read either returns the canonical block bytes or a
//! classified error, and the scan engine's shard-ordered merge does the
//! rest — so coordinator-backed training is byte-identical to the
//! in-process `ShardedSource` path.

#![warn(missing_docs)]

pub mod coordinator;
pub mod fault;
pub mod frame;
pub mod transport;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, WorkerExit};
pub use fault::{WorkerFault, WorkerFaultPlan};
pub use frame::{Request, Response, ShardInfo};
pub use transport::{ProcessSpawner, SimSpawner, Transport, WorkerSpawner};
pub use worker::{maybe_run_worker, worker_main, FAULT_EXIT_CODE, WORKER_FLAG};

#[cfg(test)]
mod sim_tests {
    //! Deterministic fault campaigns over the simulated transport: no
    //! real processes, no sleeps, exact counter arithmetic.

    use super::*;
    use bellwether_obs::Registry;
    use bellwether_storage::{
        even_shard_plan, RegionBlock, RetryPolicy, ShardedWriter, TrainingSource,
    };
    use std::path::PathBuf;
    use std::time::Duration;

    fn block(region: u32, rows: usize) -> RegionBlock {
        let mut b = RegionBlock::new(vec![region], 2);
        for i in 0..rows {
            b.push(i as i64, &[1.0, region as f64 + i as f64], 0.25 * i as f64);
        }
        b
    }

    /// Write `regions` one-coordinate regions split over `shards`
    /// shard files; returns the dataset dir.
    fn dataset(name: &str, regions: usize, shards: usize) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("bw_coord_sim_{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = ShardedWriter::create(&dir, 2, 1, even_shard_plan(regions, shards)).unwrap();
        for r in 0..regions {
            w.write_region(&block(r as u32, 2 + r % 3)).unwrap();
        }
        w.finish().unwrap();
        dir
    }

    /// Zero-backoff policy: attempts bound restarts, sleeps are free.
    fn budget(attempts: u32) -> CoordinatorConfig {
        CoordinatorConfig::new().restart_policy(
            RetryPolicy::builder()
                .max_attempts(attempts)
                .base_backoff(Duration::ZERO)
                .max_backoff(Duration::ZERO)
                .build()
                .unwrap(),
        )
    }

    fn read_all(coord: &Coordinator) -> Vec<Vec<f64>> {
        (0..coord.num_regions())
            .map(|i| coord.read_region(i).unwrap().targets.clone())
            .collect()
    }

    #[test]
    fn clean_simulation_matches_direct_reads() {
        let dir = dataset("clean", 9, 3);
        let coord =
            Coordinator::simulated(&dir, WorkerFaultPlan::none(), budget(1)).unwrap();
        assert_eq!(coord.num_regions(), 9);
        assert_eq!(coord.feature_arity(), 2);
        let direct = bellwether_storage::ShardedSource::open(&dir).unwrap();
        for i in 0..9 {
            assert_eq!(coord.region_coords(i), direct.region_coords(i));
            let a = coord.read_region(i).unwrap();
            let b = direct.read_region(i).unwrap();
            assert_eq!(a.region, b.region);
            assert_eq!(a.targets, b.targets);
            assert_eq!(a.item_ids, b.item_ids);
        }
        assert_eq!(coord.find_region(&[4]), Some(4));
        assert_eq!(coord.find_region(&[99]), None);
        assert_eq!(coord.total_examples().unwrap(), direct.total_examples().unwrap());
        assert_eq!(coord.shard_starts(), Some(vec![0, 3, 6]));
    }

    #[test]
    fn full_campaign_restarts_exactly_once_per_band() {
        // 2 shards × 12 regions each: every request stream is long
        // enough that each band incarnation fires (trigger < 4).
        let shards = 2;
        let dir = dataset("campaign", 24, shards);
        let plan = WorkerFaultPlan::new(7).with_crashes(1).with_hangs(1).with_corrupts(1);
        let reg = Registry::new();
        let coord =
            Coordinator::simulated_with_registry(&dir, plan, budget(8), &reg).unwrap();
        let targets = read_all(&coord);

        // Reference: clean in-process reads.
        let direct = bellwether_storage::ShardedSource::open(&dir).unwrap();
        let expect: Vec<Vec<f64>> = (0..24)
            .map(|i| direct.read_region(i).unwrap().targets.clone())
            .collect();
        assert_eq!(targets, expect, "faulted reads return canonical bytes");

        // Each worker burns exactly its three faulty incarnations.
        let n = |name: &str| {
            reg.snapshot()
                .counters
                .iter()
                .find(|(c, _)| c == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let s = shards as u64;
        assert_eq!(n("coord/worker_restarts"), 3 * s);
        assert_eq!(n("coord/worker_crashes"), s);
        assert_eq!(n("coord/worker_timeouts"), s);
        assert_eq!(n("coord/corrupt_frames"), s);
        assert_eq!(n("coord/workers_spawned"), 4 * s);
        assert_eq!(n("coord/shards_dead"), 0);
        assert_eq!(n("coord/reads"), 24);

        // A second full pass runs clean: bands are exhausted.
        let again = read_all(&coord);
        assert_eq!(again, expect);
        assert_eq!(n("coord/worker_restarts"), 3 * s, "no new restarts");
    }

    #[test]
    fn campaign_replays_identically() {
        let dir = dataset("replay", 12, 3);
        let plan = WorkerFaultPlan::new(99).with_crashes(1).with_corrupts(1);
        let mut snapshots = Vec::new();
        for _ in 0..2 {
            let reg = Registry::new();
            let coord =
                Coordinator::simulated_with_registry(&dir, plan, budget(6), &reg).unwrap();
            read_all(&coord);
            let mut counters = reg.snapshot().counters;
            counters.sort();
            snapshots.push(counters);
        }
        assert_eq!(snapshots[0], snapshots[1], "same plan, same counters");
    }

    #[test]
    fn exhausted_budget_kills_exactly_one_shard() {
        let dir = dataset("poisoned", 12, 3);
        let plan = WorkerFaultPlan::new(3).with_poisoned(1);
        let reg = Registry::new();
        let coord =
            Coordinator::simulated_with_registry(&dir, plan, budget(2), &reg).unwrap();

        let mut failed = Vec::new();
        for i in 0..coord.num_regions() {
            if let Err(err) = coord.read_region(i) {
                assert_eq!(err.kind(), std::io::ErrorKind::Other);
                failed.push(i);
            }
        }
        // Worker 1 owns regions 4..8; its first read spends the budget
        // and every later read fails fast without new spawns.
        assert_eq!(failed, coord.regions_of_worker(1).collect::<Vec<_>>());
        assert_eq!(coord.dead_workers(), vec![1]);
        let n = |name: &str| {
            reg.snapshot()
                .counters
                .iter()
                .find(|(c, _)| c == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(n("coord/shards_dead"), 1);
        assert_eq!(n("coord/worker_restarts"), 1, "budget of 2 = one restart");
        // Healthy shards were untouched by the dead one.
        let direct = bellwether_storage::ShardedSource::open(&dir).unwrap();
        for i in (0..4).chain(8..12) {
            assert_eq!(
                coord.read_region(i).unwrap().targets,
                direct.read_region(i).unwrap().targets
            );
        }
    }

    #[test]
    fn heartbeat_counts_live_workers() {
        let dir = dataset("heartbeat", 6, 2);
        let coord =
            Coordinator::simulated(&dir, WorkerFaultPlan::none(), budget(1)).unwrap();
        assert_eq!(coord.heartbeat(), 2);
        let snap = coord.snapshot();
        let hb = snap
            .counters
            .iter()
            .find(|(c, _)| c == "coord/heartbeats")
            .map(|(_, v)| *v);
        assert_eq!(hb, Some(2));
    }

    #[test]
    fn shutdown_reports_spawn_counts() {
        let dir = dataset("shutdown", 8, 2);
        let plan = WorkerFaultPlan::new(11).with_crashes(1);
        let coord = Coordinator::simulated(&dir, plan, budget(4)).unwrap();
        read_all(&coord);
        let exits = coord.shutdown();
        assert_eq!(exits.len(), 2);
        for exit in &exits {
            assert_eq!(exit.spawns, 2, "one crash band = two spawns");
        }
    }

    #[test]
    fn snapshot_includes_coord_counters() {
        let dir = dataset("snapshot", 4, 2);
        let coord =
            Coordinator::simulated(&dir, WorkerFaultPlan::none(), budget(1)).unwrap();
        read_all(&coord);
        let snap = coord.snapshot();
        for name in ["coord/reads", "coord/frames_sent", "coord/workers_spawned"] {
            assert!(
                snap.counters.iter().any(|(c, _)| c == name),
                "snapshot missing {name}"
            );
        }
        let reads = snap
            .counters
            .iter()
            .find(|(c, _)| c == "coord/reads")
            .map(|(_, v)| *v);
        assert_eq!(reads, Some(4));
        // IO stats flow through the standard storage counters too.
        let io = snap
            .counters
            .iter()
            .find(|(c, _)| c == "storage/regions_read")
            .map(|(_, v)| *v);
        assert_eq!(io, Some(4));
    }
}
