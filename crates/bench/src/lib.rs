//! # bellwether-bench
//!
//! Shared harness code for the figure-reproduction binaries
//! (`fig07` … `fig12`) and the micro-benchmarks. Each binary
//! regenerates one figure of the paper's evaluation section, printing
//! the same series the paper plots and dumping machine-readable JSON
//! under `results/`. The micro-benchmarks use the local wall-clock
//! [`harness`] (the build is offline and self-contained).

#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod rss;
pub mod setup;

pub use harness::{emit_metrics_json, BenchResult, Harness};
pub use rss::{peak_rss_bytes, reset_peak_rss};
pub use report::{results_dir, FigureReport, Series};
pub use setup::{budget_filtered_source, prepare_retail, PreparedRetail};

/// True when the harness should run a scaled-down configuration
/// (`BW_QUICK=1`), used by smoke tests and constrained environments.
pub fn quick_mode() -> bool {
    std::env::var("BW_QUICK").is_ok_and(|v| v == "1")
}

/// Wall-clock seconds of a closure.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}
