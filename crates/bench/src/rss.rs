//! Peak-RSS sampling for benchmark hygiene.
//!
//! Wall time alone cannot show that an out-of-core pass actually held
//! its memory budget, so the harness reports the process's peak
//! resident set alongside every timing. On Linux the kernel tracks the
//! high-water mark (`VmHWM` in `/proc/self/status`) and lets a process
//! reset it (writing `5` to `/proc/self/clear_refs`), which gives
//! per-benchmark peaks rather than one all-time max. Both operations
//! are best-effort: on other platforms (or locked-down kernels) they
//! return `None`/no-op and the JSON reports `null`.

use std::fs;

/// The process's peak resident set size in bytes since start (or since
/// the last [`reset_peak_rss`]), if the platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Reset the kernel's peak-RSS high-water mark to the current RSS, so
/// the next [`peak_rss_bytes`] reflects only allocations made after
/// this call. Best-effort: returns whether the reset took.
pub fn reset_peak_rss() -> bool {
    fs::write("/proc/self/clear_refs", b"5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_a_plausible_value() {
        // Either unsupported (None) or a sane positive figure: more
        // than a page, less than a terabyte.
        if let Some(b) = peak_rss_bytes() {
            assert!(b > 4096, "peak rss {b} too small");
            assert!(b < 1 << 40, "peak rss {b} implausibly large");
        }
    }

    #[test]
    fn reset_then_allocate_raises_the_peak() {
        if !reset_peak_rss() {
            return; // platform doesn't support it; nothing to assert
        }
        let before = peak_rss_bytes();
        let buf = vec![1u8; 64 << 20];
        std::hint::black_box(&buf);
        let after = peak_rss_bytes();
        drop(buf);
        if let (Some(b), Some(a)) = (before, after) {
            assert!(a >= b, "peak rss went backwards: {b} -> {a}");
        }
    }
}
