//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the benches use this small local
//! runner instead of Criterion: warm up, take a fixed number of timed
//! samples, report min/median/mean, and optionally dump everything as
//! JSON under `results/`. Benches register with `harness = false` in
//! the manifest and drive a [`Harness`] from `main`.

use crate::report::{json_escape, json_f64};
use std::fs;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Timing summary for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, e.g. `cube_pass_retail_150x8x10/threads=2`.
    pub name: String,
    /// Per-sample wall-clock seconds (each sample may batch several
    /// iterations; values are per-iteration).
    pub samples: Vec<f64>,
    /// Peak resident set across the timed samples, when the platform
    /// exposes it (see [`crate::rss`]). The high-water mark is reset
    /// after warm-up, so this is per-benchmark, not per-process.
    pub peak_rss_bytes: Option<u64>,
}

impl BenchResult {
    /// Fastest sample — the least-noise estimate on a busy machine.
    pub fn min_secs(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Median sample.
    pub fn median_secs(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(f64::total_cmp);
        match s.len() {
            0 => f64::NAN,
            n if n % 2 == 1 => s[n / 2],
            n => (s[n / 2 - 1] + s[n / 2]) / 2.0,
        }
    }

    /// Mean sample.
    pub fn mean_secs(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// The benchmark runner: collects [`BenchResult`]s and prints a line
/// per benchmark as it goes.
pub struct Harness {
    /// Timed samples per benchmark.
    pub sample_size: usize,
    /// Warm-up iterations before sampling.
    pub warmup_iters: usize,
    /// Completed results, in registration order.
    pub results: Vec<BenchResult>,
}

impl Harness {
    /// Default configuration: 10 samples, 2 warm-up iterations.
    /// `BW_BENCH_SAMPLES` overrides the sample count; `BW_QUICK=1`
    /// drops to 3 samples for smoke runs.
    pub fn new() -> Self {
        let mut sample_size = 10;
        if crate::quick_mode() {
            sample_size = 3;
        }
        if let Ok(v) = std::env::var("BW_BENCH_SAMPLES") {
            if let Ok(n) = v.parse::<usize>() {
                sample_size = n.max(1);
            }
        }
        Harness {
            sample_size,
            warmup_iters: 2,
            results: Vec::new(),
        }
    }

    /// Time `f`: warm up, then record `sample_size` samples. The return
    /// value is routed through [`black_box`] so the work is not
    /// optimised away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        // Reset the RSS high-water mark after warm-up so the reported
        // peak covers only the timed samples of *this* benchmark.
        crate::rss::reset_peak_rss();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_secs_f64());
        }
        let result = BenchResult {
            name: name.to_string(),
            samples,
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
        };
        let rss = match result.peak_rss_bytes {
            Some(b) => format!("{:>7.1} MiB", b as f64 / (1024.0 * 1024.0)),
            None => "     n/a".to_string(),
        };
        println!(
            "{:<44} min {:>10.6}s  median {:>10.6}s  mean {:>10.6}s  peak-rss {rss}  ({} samples)",
            result.name,
            result.min_secs(),
            result.median_secs(),
            result.mean_secs(),
            result.samples.len()
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// Serialize all results as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"benchmarks\": [");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"name\": \"{}\",\n",
                json_escape(&r.name)
            ));
            out.push_str(&format!(
                "      \"min_secs\": {},\n",
                json_f64(r.min_secs())
            ));
            out.push_str(&format!(
                "      \"median_secs\": {},\n",
                json_f64(r.median_secs())
            ));
            out.push_str(&format!(
                "      \"mean_secs\": {},\n",
                json_f64(r.mean_secs())
            ));
            out.push_str(&format!(
                "      \"peak_rss_bytes\": {},\n",
                r.peak_rss_bytes
                    .map_or_else(|| "null".to_string(), |b| b.to_string())
            ));
            let samples: Vec<String> = r.samples.iter().map(|s| json_f64(*s)).collect();
            out.push_str(&format!(
                "      \"samples\": [{}]\n",
                samples.join(", ")
            ));
            out.push_str("    }");
        }
        out.push_str("\n  ]\n}");
        out
    }

    /// Write [`Harness::to_json`] to `path`, creating parent dirs.
    pub fn emit_json(&self, path: &Path) {
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {dir:?}: {e}");
                return;
            }
        }
        match fs::write(path, self.to_json()) {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
        }
    }

    /// Look up a completed result by exact name.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// Write a [`bellwether_obs::MetricsSnapshot`] as JSON under `results/`
/// next to the timing output, creating parent dirs. Benches run the
/// workload once more with a live [`bellwether_obs::Registry`] and dump
/// the counters/spans here so a run leaves both a timing and a work
/// profile behind.
pub fn emit_metrics_json(snap: &bellwether_obs::MetricsSnapshot, path: &Path) {
    if let Some(dir) = path.parent() {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
    }
    match fs::write(path, snap.to_json()) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_samples_and_summaries() {
        let mut h = Harness {
            sample_size: 4,
            warmup_iters: 1,
            results: Vec::new(),
        };
        h.bench("noop", || 1 + 1);
        let r = h.result("noop").unwrap();
        assert_eq!(r.samples.len(), 4);
        assert!(r.min_secs() <= r.median_secs());
        assert!(r.median_secs().is_finite());
    }

    #[test]
    fn json_contains_all_benchmarks() {
        let mut h = Harness {
            sample_size: 2,
            warmup_iters: 0,
            results: Vec::new(),
        };
        h.bench("a", || ());
        h.bench("b", || ());
        let j = h.to_json();
        assert!(j.contains("\"name\": \"a\""));
        assert!(j.contains("\"name\": \"b\""));
        assert!(j.contains("\"median_secs\""));
    }
}
