//! Dataset preparation shared by the retail figures (7, 8, 9).

use bellwether_core::{build_cube_input, build_memory_source, global_target};
use bellwether_cube::{CostModel, CubeInput, RegionId};
use bellwether_datagen::{generate_retail, RetailConfig, RetailDataset};
use bellwether_storage::{MemorySource, TrainingSource};
use bellwether_table::ops::AggFunc;
use std::collections::HashMap;

/// A retail dataset with its entire training data materialised over
/// *all* candidate regions (budget filtering happens per experiment
/// point, so one CUBE pass serves the whole sweep).
pub struct PreparedRetail {
    /// The generated dataset.
    pub data: RetailDataset,
    /// Per-item targets (total profit over the full period and area).
    pub targets: HashMap<i64, f64>,
    /// The compiled CUBE input (reused by the sampling baseline).
    pub cube_input: CubeInput,
    /// Entire training data over all regions, in region scan order.
    pub source: MemorySource,
    /// Region ids in scan order.
    pub regions: Vec<RegionId>,
}

/// Generate + label + CUBE a retail dataset.
pub fn prepare_retail(cfg: &RetailConfig) -> PreparedRetail {
    let data = generate_retail(cfg);
    let targets =
        global_target(&data.db, "profit", AggFunc::Sum).expect("target query");
    let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries)
        .expect("cube input");
    let cube = bellwether_cube::cube_pass(&data.space, &cube_input);
    let regions = data.space.all_regions();
    let source = build_memory_source(&cube, &regions, &data.items, &targets);
    PreparedRetail {
        data,
        targets,
        cube_input,
        source,
        regions,
    }
}

/// A new in-memory source containing only the regions affordable under
/// `budget` (for the item-centric methods, which search every stored
/// region).
pub fn budget_filtered_source(prep: &PreparedRetail, budget: f64) -> MemorySource {
    let blocks: Vec<_> = (0..prep.source.num_regions())
        .filter(|&i| {
            let region = RegionId(prep.source.region_coords(i).to_vec());
            prep.data.cost.cost(&prep.data.space, &region) <= budget
        })
        .map(|i| prep.source.blocks()[i].clone())
        .collect();
    MemorySource::from_shared(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_retail() {
        let mut cfg = RetailConfig::mail_order(40, 5);
        cfg.months = 4;
        cfg.converge_month = 3;
        cfg.states = Some(vec!["MD", "WI", "CA", "NY"]);
        let prep = prepare_retail(&cfg);
        assert_eq!(prep.source.num_regions() as u64, prep.data.space.num_regions());
        assert_eq!(prep.targets.len(), 40);
        let filtered = budget_filtered_source(&prep, 10.0);
        assert!(filtered.num_regions() < prep.source.num_regions());
        assert!(filtered.num_regions() > 0);
    }
}
