//! Figure 10 — controlled simulation: prediction error of the cube,
//! basic and tree methods as a function of (a) the noise level at a
//! 15-node concept, and (b) the concept complexity (tree node count) at
//! noise 0.5. Each point averages several independently generated
//! datasets.

use bellwether_bench::{quick_mode, results_dir, FigureReport, Series};
use bellwether_core::{
    evaluate_method, BellwetherConfig, CubeConfig, ErrorMeasure, EvalContext,
    ItemCentricEval, Method, TreeConfig,
};
use bellwether_datagen::{generate_simulation, SimulationConfig};

/// Evaluate the three methods on one generated dataset.
fn run_once(cfg: &SimulationConfig, folds: usize) -> (Option<f64>, Option<f64>, Option<f64>) {
    let sim = generate_simulation(cfg);
    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let tree_cfg = TreeConfig {
        min_node_items: 30,
        max_numeric_splits: 4,
        prune_frac: 0.02,
        ..TreeConfig::default()
    };
    let cube_cfg = CubeConfig {
        min_subset_size: 25,
    };
    let eval = ItemCentricEval {
        folds,
        seed: cfg.seed ^ 0xE7A1,
    };
    let ctx = EvalContext {
        source: &sim.source,
        region_space: &sim.region_space,
        items: &sim.items,
        targets: &sim.targets,
        item_space: Some(&sim.item_space),
        item_coords: Some(&sim.item_coords),
    };
    let basic = evaluate_method(&ctx, &problem, &Method::Basic, &eval).expect("basic");
    let tree =
        evaluate_method(&ctx, &problem, &Method::Tree(tree_cfg), &eval).expect("tree");
    let cube = evaluate_method(&ctx, &problem, &Method::Cube(cube_cfg, 0.95), &eval)
        .expect("cube");
    (basic, tree, cube)
}

/// Average the methods over `reps` dataset seeds.
fn run_point(
    nodes: usize,
    noise: f64,
    reps: usize,
    n_items: usize,
    folds: usize,
) -> (Option<f64>, Option<f64>, Option<f64>) {
    let mut acc = [Vec::new(), Vec::new(), Vec::new()];
    for rep in 0..reps {
        let cfg = SimulationConfig {
            n_items,
            ..SimulationConfig::paper(nodes, noise, 1000 + rep as u64)
        };
        let (b, t, c) = run_once(&cfg, folds);
        if let Some(v) = b {
            acc[0].push(v);
        }
        if let Some(v) = t {
            acc[1].push(v);
        }
        if let Some(v) = c {
            acc[2].push(v);
        }
    }
    let mean = |xs: &Vec<f64>| {
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    };
    (mean(&acc[0]), mean(&acc[1]), mean(&acc[2]))
}

fn main() {
    let (reps, n_items, folds) = if quick_mode() { (2, 300, 4) } else { (10, 1000, 10) };
    let dir = results_dir();

    // (a) error vs noise at 15-node complexity.
    let noises = [0.05, 0.5, 1.0, 2.0];
    let mut basic = Series::new("basic");
    let mut tree = Series::new("tree");
    let mut cube = Series::new("cube");
    for &noise in &noises {
        eprintln!("fig10a: noise {noise}…");
        let (b, t, c) = run_point(15, noise, reps, n_items, folds);
        basic.push(noise, b);
        tree.push(noise, t);
        cube.push(noise, c);
    }
    let mut fa = FigureReport::new(
        "fig10a",
        "simulation: error vs noise (15-node concept)",
        "noise",
        "RMSE",
    );
    fa.add_series(cube);
    fa.add_series(basic);
    fa.add_series(tree);
    fa.emit(&dir);

    // (b) error vs concept complexity at noise 0.5.
    let node_counts = [3usize, 7, 15, 31, 63];
    let mut basic = Series::new("basic");
    let mut tree = Series::new("tree");
    let mut cube = Series::new("cube");
    for &nodes in &node_counts {
        eprintln!("fig10b: {nodes} nodes…");
        let (b, t, c) = run_point(nodes, 0.5, reps, n_items, folds);
        basic.push(nodes as f64, b);
        tree.push(nodes as f64, t);
        cube.push(nodes as f64, c);
    }
    let mut fb = FigureReport::new(
        "fig10b",
        "simulation: error vs concept complexity (noise 0.5)",
        "nodes",
        "RMSE",
    );
    fb.add_series(cube);
    fb.add_series(basic);
    fb.add_series(tree);
    fb.emit(&dir);
}
