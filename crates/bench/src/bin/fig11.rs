//! Figure 11 — efficiency and scalability on the §7.4 synthetic
//! workload, with the entire training data on disk and **no caching**:
//! every region request is a real file read.
//!
//! * (a) naive vs scan-based algorithms (naive tree / RF tree /
//!   naive cube / single-scan cube / optimized cube) at 100–300 k
//!   examples;
//! * (b) single-scan vs optimized cube at 2.5–10 M examples;
//! * (c) RF tree at 2.5–10 M examples.

use bellwether_bench::{quick_mode, results_dir, time_secs, FigureReport, Series};
use bellwether_core::{
    build_naive_cube, build_naive_tree, build_optimized_cube, build_rainforest,
    build_single_scan_cube, BellwetherConfig, CubeConfig, ErrorMeasure, TreeConfig,
};
use bellwether_datagen::{build_scale_workload, ScaleConfig, ScaleWorkload};
use bellwether_storage::DiskSource;
use std::path::PathBuf;

fn problem() -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap()
}

fn tree_cfg(depth: usize) -> TreeConfig {
    TreeConfig {
        max_depth: depth,
        min_node_items: 200,
        max_numeric_splits: 8,
        ..TreeConfig::default()
    }
}

fn cube_cfg() -> CubeConfig {
    CubeConfig {
        min_subset_size: 30,
    }
}

/// Generate a workload of ~`examples` examples on disk; returns the
/// workload and the opened source.
fn disk_workload(examples: usize, seed: u64) -> (ScaleWorkload, DiskSource, PathBuf) {
    let cfg = ScaleConfig::sized_for(examples, seed);
    let w = build_scale_workload(&cfg);
    let path = std::env::temp_dir().join(format!("bw_fig11_{examples}_{seed}.bwtd"));
    w.write_to_disk(&path).expect("write workload");
    let src = DiskSource::open(&path).expect("open workload");
    (w, src, path)
}

fn main() {
    let dir = results_dir();
    let quick = quick_mode();

    // ---- (a) naive vs scan-based, 100k–300k examples.
    let sizes_a: Vec<usize> = if quick {
        vec![20_000, 40_000]
    } else {
        vec![100_000, 200_000, 300_000]
    };
    let mut s_naive_tree = Series::new("naive tree");
    let mut s_rf_tree = Series::new("RF tree");
    let mut s_naive_cube = Series::new("naive cube");
    let mut s_single = Series::new("single-scan cube");
    let mut s_opt = Series::new("optimized cube");
    for &n in &sizes_a {
        eprintln!("fig11a: {n} examples…");
        let (w, src, path) = disk_workload(n, 411);
        let x = n as f64 / 1000.0;
        let pr = problem();
        let tc = tree_cfg(if quick { 2 } else { 3 });
        let cc = cube_cfg();

        let (_, t) = time_secs(|| {
            build_naive_tree(&src, &w.region_space, &w.items, None, &pr, &tc).unwrap()
        });
        s_naive_tree.push(x, Some(t));
        let (_, t) = time_secs(|| {
            build_rainforest(&src, &w.region_space, &w.items, None, &pr, &tc).unwrap()
        });
        s_rf_tree.push(x, Some(t));
        let (_, t) = time_secs(|| {
            build_naive_cube(&src, &w.region_space, &w.item_space, &w.item_coords, &pr, &cc)
                .unwrap()
        });
        s_naive_cube.push(x, Some(t));
        let (_, t) = time_secs(|| {
            build_single_scan_cube(
                &src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &pr,
                &cc,
            )
            .unwrap()
        });
        s_single.push(x, Some(t));
        let (_, t) = time_secs(|| {
            build_optimized_cube(
                &src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &pr,
                &cc,
            )
            .unwrap()
        });
        s_opt.push(x, Some(t));
        std::fs::remove_file(path).ok();
    }
    let mut fa = FigureReport::new(
        "fig11a",
        "naive vs scan-based algorithms, all reads from disk",
        "thousands of examples",
        "seconds",
    );
    fa.add_series(s_opt);
    fa.add_series(s_naive_cube);
    fa.add_series(s_single);
    fa.add_series(s_naive_tree);
    fa.add_series(s_rf_tree);
    fa.emit(&dir);

    // ---- (b) cubes at 2.5M–10M examples; (c) RF tree, same sizes.
    let sizes_b: Vec<usize> = if quick {
        vec![250_000, 500_000]
    } else {
        vec![2_500_000, 5_000_000, 7_500_000, 10_000_000]
    };
    let mut s_single = Series::new("single-scan cube");
    let mut s_opt = Series::new("optimized cube");
    let mut s_rf = Series::new("RF tree");
    for &n in &sizes_b {
        eprintln!("fig11bc: {n} examples…");
        let (w, src, path) = disk_workload(n, 412);
        let x = n as f64 / 1_000_000.0;
        let pr = problem();
        let cc = cube_cfg();

        let (_, t) = time_secs(|| {
            build_single_scan_cube(
                &src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &pr,
                &cc,
            )
            .unwrap()
        });
        s_single.push(x, Some(t));
        let (_, t) = time_secs(|| {
            build_optimized_cube(
                &src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &pr,
                &cc,
            )
            .unwrap()
        });
        s_opt.push(x, Some(t));
        let tc = tree_cfg(if quick { 2 } else { 7 });
        let (_, t) = time_secs(|| {
            build_rainforest(&src, &w.region_space, &w.items, None, &pr, &tc).unwrap()
        });
        s_rf.push(x, Some(t));
        std::fs::remove_file(path).ok();
    }
    let mut fb = FigureReport::new(
        "fig11b",
        "cube scalability (millions of examples)",
        "millions of examples",
        "seconds",
    );
    fb.add_series(s_opt.clone());
    fb.add_series(s_single);
    fb.emit(&dir);

    let mut fc = FigureReport::new(
        "fig11c",
        "RF tree scalability (millions of examples)",
        "millions of examples",
        "seconds",
    );
    fc.add_series(s_rf);
    fc.emit(&dir);
}
