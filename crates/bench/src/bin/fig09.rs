//! Figure 9 — the book-store dataset, where **no clear bellwether
//! exists**: (a) error vs budget, (b) fraction of indistinguishable
//! regions (expected to stay high), (c) Basic vs Tree vs Cube with no
//! clear winner.

use bellwether_bench::{
    budget_filtered_source, prepare_retail, quick_mode, results_dir, FigureReport, Series,
};
use bellwether_core::{
    basic_search, evaluate_method, sampling_baseline_error, BellwetherConfig, CubeConfig,
    ErrorMeasure, EvalContext, ItemCentricEval, Method, TreeConfig,
};
use bellwether_datagen::RetailConfig;
use bellwether_storage::TrainingSource;

fn main() {
    let (n_items, folds, trials) = if quick_mode() { (120, 4, 2) } else { (400, 10, 5) };
    let cfg = RetailConfig::book_store(n_items, 2004);
    eprintln!("generating book-store dataset ({n_items} items)…");
    let prep = prepare_retail(&cfg);
    let dir = results_dir();

    // (a) + (b): basic analysis under CV error. The axis stays below the
    // cost of the all-covering region (which would contain the target
    // itself).
    let budgets: Vec<f64> = (1..=7).map(|i| 20.0 * i as f64).collect();
    let mut bel = Series::new("Bel Err");
    let mut avg = Series::new("Avg Err");
    let mut smp = Series::new("Smp Err");
    let mut frac95 = Series::new("95%");
    let mut frac99 = Series::new("99%");
    for &budget in &budgets {
        let config = BellwetherConfig::builder(budget)
            .min_coverage(0.5)
            .min_examples(20)
            .error_measure(ErrorMeasure::cv10())
            .build()
            .unwrap();
        let result = basic_search(
            &prep.source,
            &prep.data.space,
            &prep.data.cost,
            &config,
            prep.data.items.len(),
        )
        .expect("basic search");
        bel.push(budget, result.bellwether().map(|r| r.error.value));
        avg.push(budget, result.average_error());
        smp.push(
            budget,
            sampling_baseline_error(
                &prep.data.space,
                &prep.cube_input,
                &prep.data.items,
                &prep.targets,
                &prep.data.cost,
                &config,
                trials,
                9 + budget as u64,
            )
            .expect("sampling"),
        );
        frac95.push(budget, result.indistinguishable_fraction(0.95));
        frac99.push(budget, result.indistinguishable_fraction(0.99));
    }
    let mut fa = FigureReport::new(
        "fig09a",
        "book store: error vs budget (10-fold CV)",
        "budget",
        "RMSE",
    );
    fa.add_series(bel);
    fa.add_series(avg);
    fa.add_series(smp);
    fa.emit(&dir);

    let mut fb = FigureReport::new(
        "fig09b",
        "book store: fraction of indistinguishable regions",
        "budget",
        "fraction",
    );
    fb.add_series(frac95);
    fb.add_series(frac99);
    fb.emit(&dir);

    // (c): item-centric methods.
    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let tree_cfg = TreeConfig {
        min_node_items: (n_items / 8).max(20),
        max_numeric_splits: 16,
        prune_frac: 0.05,
        ..TreeConfig::default()
    };
    let cube_cfg = CubeConfig {
        min_subset_size: (n_items / 10).max(15),
    };
    let eval = ItemCentricEval { folds, seed: 0xF19 };

    let mut basic = Series::new("SingleRegion");
    let mut tree = Series::new("Tree");
    let mut cube = Series::new("Cube");
    for &budget in &budgets {
        let source = budget_filtered_source(&prep, budget);
        if source.num_regions() == 0 {
            basic.push(budget, None);
            tree.push(budget, None);
            cube.push(budget, None);
            continue;
        }
        let ctx = EvalContext {
            source: &source,
            region_space: &prep.data.space,
            items: &prep.data.items,
            targets: &prep.targets,
            item_space: Some(&prep.data.item_space),
            item_coords: Some(&prep.data.item_coords),
        };
        basic.push(
            budget,
            evaluate_method(&ctx, &problem, &Method::Basic, &eval).expect("basic"),
        );
        tree.push(
            budget,
            evaluate_method(&ctx, &problem, &Method::Tree(tree_cfg.clone()), &eval)
                .expect("tree"),
        );
        cube.push(
            budget,
            evaluate_method(&ctx, &problem, &Method::Cube(cube_cfg.clone(), 0.95), &eval)
                .expect("cube"),
        );
    }
    let mut fc = FigureReport::new(
        "fig09c",
        "book store: item-centric prediction",
        "budget",
        "RMSE",
    );
    fc.add_series(basic);
    fc.add_series(tree);
    fc.add_series(cube);
    fc.emit(&dir);
}
