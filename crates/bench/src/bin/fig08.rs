//! Figure 8 — item-centric bellwether-based prediction on the mail-order
//! dataset: 10-fold CV prediction RMSE of the Basic / Tree / Cube
//! methods at various budgets.

use bellwether_bench::{
    budget_filtered_source, prepare_retail, quick_mode, results_dir, FigureReport, Series,
};
use bellwether_core::{
    evaluate_method, BellwetherConfig, CubeConfig, ErrorMeasure, EvalContext,
    ItemCentricEval, Method, TreeConfig,
};
use bellwether_datagen::RetailConfig;
use bellwether_storage::TrainingSource;

fn main() {
    let (n_items, folds) = if quick_mode() { (120, 4) } else { (400, 10) };
    let cfg = RetailConfig::mail_order(n_items, 20060912);
    eprintln!("generating mail-order dataset ({n_items} items)…");
    let prep = prepare_retail(&cfg);

    // Trees/cubes fit many small models per region: training-set error
    // keeps that tractable and, per Fig. 7(c), tracks CV for linear
    // models.
    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let tree_cfg = TreeConfig {
        min_node_items: (n_items / 8).max(20),
        max_numeric_splits: 16,
        prune_frac: 0.05,
        ..TreeConfig::default()
    };
    let cube_cfg = CubeConfig {
        min_subset_size: (n_items / 10).max(15),
    };
    let eval = ItemCentricEval {
        folds,
        seed: 0xF18,
    };

    let budgets: Vec<f64> = (1..=8).map(|i| 10.0 * i as f64).collect();
    let mut basic = Series::new("Basic");
    let mut tree = Series::new("Tree");
    let mut cube = Series::new("Cube");

    for &budget in &budgets {
        let source = budget_filtered_source(&prep, budget);
        eprintln!(
            "budget {budget}: {} affordable regions",
            source.num_regions()
        );
        if source.num_regions() == 0 {
            basic.push(budget, None);
            tree.push(budget, None);
            cube.push(budget, None);
            continue;
        }
        let ctx = EvalContext {
            source: &source,
            region_space: &prep.data.space,
            items: &prep.data.items,
            targets: &prep.targets,
            item_space: Some(&prep.data.item_space),
            item_coords: Some(&prep.data.item_coords),
        };
        let b = evaluate_method(&ctx, &problem, &Method::Basic, &eval).expect("basic");
        let t = evaluate_method(&ctx, &problem, &Method::Tree(tree_cfg.clone()), &eval)
            .expect("tree");
        let c = evaluate_method(
            &ctx,
            &problem,
            &Method::Cube(cube_cfg.clone(), 0.95),
            &eval,
        )
        .expect("cube");
        basic.push(budget, b);
        tree.push(budget, t);
        cube.push(budget, c);
    }

    let mut fig = FigureReport::new(
        "fig08",
        "mail order: item-centric prediction (Basic vs Tree vs Cube)",
        "budget",
        "RMSE",
    );
    fig.add_series(basic);
    fig.add_series(tree);
    fig.add_series(cube);
    fig.emit(&results_dir());
}
