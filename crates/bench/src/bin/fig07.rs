//! Figure 7 — basic bellwether analysis of the (synthetic) mail-order
//! dataset.
//!
//! * (a) RMSE of the bellwether model (`Bel Err`), the average feasible
//!   region (`Avg Err`) and random budget-matched collections
//!   (`Smp Err`) as a function of the budget, under 10-fold CV error;
//! * (b) fraction of regions indistinguishable from the bellwether at
//!   95 % / 99 % confidence;
//! * (c) the same curves as (a) under training-set error — which, for
//!   linear models, should look almost identical to (a).

use bellwether_bench::{prepare_retail, quick_mode, results_dir, FigureReport, Series};
use bellwether_core::{
    basic_search, sampling_baseline_error, BellwetherConfig, ErrorMeasure,
};
use bellwether_datagen::RetailConfig;

fn main() {
    let (n_items, trials) = if quick_mode() { (120, 2) } else { (400, 5) };
    let cfg = RetailConfig::mail_order(n_items, 20060912);
    eprintln!("generating mail-order dataset ({n_items} items)…");
    let prep = prepare_retail(&cfg);
    eprintln!(
        "fact rows: {}, regions: {}",
        prep.data.db.fact.num_rows(),
        prep.regions.len()
    );

    let budgets: Vec<f64> = (0..=8).map(|i| 5.0 + 10.0 * i as f64).collect();
    let dir = results_dir();

    for (fig_id, title, measure) in [
        (
            "fig07a",
            "mail order: error vs budget (10-fold CV)",
            ErrorMeasure::cv10(),
        ),
        (
            "fig07c",
            "mail order: error vs budget (training-set error)",
            ErrorMeasure::TrainingSet,
        ),
    ] {
        let mut bel = Series::new("Bel Err");
        let mut avg = Series::new("Avg Err");
        let mut smp = Series::new("Smp Err");
        let mut frac95 = Series::new("95%");
        let mut frac99 = Series::new("99%");
        let mut best_labels: Vec<(f64, String)> = Vec::new();

        for &budget in &budgets {
            let config = BellwetherConfig::builder(budget)
                .min_coverage(0.5)
                .min_examples(20)
                .error_measure(measure)
                .build()
                .unwrap();
            let result = basic_search(
                &prep.source,
                &prep.data.space,
                &prep.data.cost,
                &config,
                prep.data.items.len(),
            )
            .expect("basic search");
            bel.push(budget, result.bellwether().map(|r| r.error.value));
            avg.push(budget, result.average_error());
            let sample = sampling_baseline_error(
                &prep.data.space,
                &prep.cube_input,
                &prep.data.items,
                &prep.targets,
                &prep.data.cost,
                &config,
                trials,
                7 + budget as u64,
            )
            .expect("sampling baseline");
            smp.push(budget, sample);
            frac95.push(budget, result.indistinguishable_fraction(0.95));
            frac99.push(budget, result.indistinguishable_fraction(0.99));
            if let Some(b) = result.bellwether() {
                best_labels.push((budget, b.label.clone()));
            }
        }

        let mut fig = FigureReport::new(fig_id, title, "budget", "RMSE");
        fig.add_series(bel);
        fig.add_series(avg);
        fig.add_series(smp);
        fig.emit(&dir);

        println!("bellwether regions by budget:");
        for (b, label) in &best_labels {
            println!("  budget {b}: {label}");
        }
        println!();

        if fig_id == "fig07a" {
            let mut fb = FigureReport::new(
                "fig07b",
                "mail order: fraction of indistinguishable regions",
                "budget",
                "fraction",
            );
            fb.add_series(frac95);
            fb.add_series(frac99);
            fb.emit(&dir);
        }
    }
}
