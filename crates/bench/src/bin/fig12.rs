//! Figure 12 — algorithm characteristics:
//!
//! * (a) the optimized cube's runtime vs the number of significant item
//!   subsets (2.5 M examples, item-hierarchy fanout swept);
//! * (b) the RF tree's runtime vs the number of item-table features
//!   (1 M examples, numeric attribute count swept).

use bellwether_bench::{quick_mode, results_dir, time_secs, FigureReport, Series};
use bellwether_core::cube::significant_subsets;
use bellwether_core::{
    build_optimized_cube, build_rainforest, BellwetherConfig, CubeConfig, ErrorMeasure,
    TreeConfig,
};
use bellwether_datagen::{build_scale_workload, ScaleConfig};
use bellwether_storage::DiskSource;

fn problem() -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap()
}

fn main() {
    let dir = results_dir();
    let quick = quick_mode();

    // ---- (a) optimized cube vs #significant subsets.
    let examples_a = if quick { 200_000 } else { 2_500_000 };
    let fanouts: Vec<usize> = if quick { vec![2, 4] } else { vec![2, 4, 8, 12, 16] };
    let cc = CubeConfig {
        min_subset_size: 10,
    };
    let mut s_opt = Series::new("optimized cube");
    for &fanout in &fanouts {
        let mut cfg = ScaleConfig::sized_for(examples_a, 501);
        cfg.item_hierarchy_leaves = [fanout, fanout, fanout];
        let w = build_scale_workload(&cfg);
        let n_subsets = significant_subsets(&w.item_space, &w.item_coords, &cc)
            .map(|idx| idx.order.len())
            .unwrap_or(0);
        eprintln!("fig12a: fanout {fanout} → {n_subsets} significant subsets…");
        let path = std::env::temp_dir().join(format!("bw_fig12a_{fanout}.bwtd"));
        w.write_to_disk(&path).expect("write");
        let src = DiskSource::open(&path).expect("open");
        let pr = problem();
        let (_, t) = time_secs(|| {
            build_optimized_cube(
                &src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &pr,
                &cc,
            )
            .unwrap()
        });
        s_opt.push(n_subsets as f64, Some(t));
        std::fs::remove_file(path).ok();
    }
    let mut fa = FigureReport::new(
        "fig12a",
        "optimized cube vs number of significant subsets",
        "# significant subsets",
        "seconds",
    );
    fa.add_series(s_opt);
    fa.emit(&dir);

    // ---- (b) RF tree vs #item-table features.
    let examples_b = if quick { 100_000 } else { 1_000_000 };
    let attr_counts: Vec<usize> = if quick {
        vec![5, 10]
    } else {
        vec![25, 50, 100, 150, 200]
    };
    let mut s_rf = Series::new("RF tree");
    for &attrs in &attr_counts {
        eprintln!("fig12b: {attrs} item-table features…");
        let mut cfg = ScaleConfig::sized_for(examples_b, 502);
        cfg.n_numeric_attrs = attrs;
        let w = build_scale_workload(&cfg);
        let path = std::env::temp_dir().join(format!("bw_fig12b_{attrs}.bwtd"));
        w.write_to_disk(&path).expect("write");
        let src = DiskSource::open(&path).expect("open");
        let pr = problem();
        let tc = TreeConfig {
            max_depth: if quick { 2 } else { 3 },
            min_node_items: 200,
            max_numeric_splits: 4,
            ..TreeConfig::default()
        };
        let (_, t) = time_secs(|| {
            build_rainforest(&src, &w.region_space, &w.items, None, &pr, &tc).unwrap()
        });
        s_rf.push(attrs as f64, Some(t));
        std::fs::remove_file(path).ok();
    }
    let mut fb = FigureReport::new(
        "fig12b",
        "RF tree vs number of item-table features",
        "# item-table features",
        "seconds",
    );
    fb.add_series(s_rf);
    fb.emit(&dir);
}
