//! Figure reports: aligned text tables plus JSON artifacts.
//!
//! JSON is emitted by a small hand-rolled writer (the build is fully
//! self-contained, so no serde): the output is stable, pretty-printed,
//! and shaped exactly like the derive would have produced.

use std::fs;
use std::path::Path;

/// Escape a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Inf: they become
/// `null`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a decimal point; keep one
        // so consumers parse the field as a float.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// One plotted series: `(x, y)` points (missing y = the method produced
/// no result at that x, e.g. nothing affordable).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name (e.g. "Bel Err").
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, Option<f64>)>,
}

impl Series {
    /// Build a series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: Option<f64>) {
        self.points.push((x, y));
    }

    fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::new();
        out.push_str(&format!("{pad}{{\n"));
        out.push_str(&format!(
            "{inner}\"name\": \"{}\",\n",
            json_escape(&self.name)
        ));
        if self.points.is_empty() {
            out.push_str(&format!("{inner}\"points\": []\n"));
        } else {
            out.push_str(&format!("{inner}\"points\": [\n"));
            let point_pad = " ".repeat(indent + 4);
            for (i, (x, y)) in self.points.iter().enumerate() {
                let y_str = match y {
                    Some(v) => json_f64(*v),
                    None => "null".to_string(),
                };
                let comma = if i + 1 < self.points.len() { "," } else { "" };
                out.push_str(&format!(
                    "{point_pad}[{}, {}]{comma}\n",
                    json_f64(*x),
                    y_str
                ));
            }
            out.push_str(&format!("{inner}]\n"));
        }
        out.push_str(&format!("{pad}}}"));
        out
    }
}

/// A reproduced figure: id, axis labels, and its series.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure id, e.g. "fig07a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// Build an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Render an aligned text table: one row per x, one column per
    /// series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        out.push_str(&format!("{}\n", header.join("\t")));
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                let y = s.points.get(i).and_then(|(_, y)| *y);
                row.push(match y {
                    Some(v) => format!("{v:.4}"),
                    None => "-".to_string(),
                });
            }
            out.push_str(&format!("{}\n", row.join("\t")));
        }
        out
    }

    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": \"{}\",\n", json_escape(&self.id)));
        out.push_str(&format!("  \"title\": \"{}\",\n", json_escape(&self.title)));
        out.push_str(&format!(
            "  \"x_label\": \"{}\",\n",
            json_escape(&self.x_label)
        ));
        out.push_str(&format!(
            "  \"y_label\": \"{}\",\n",
            json_escape(&self.y_label)
        ));
        if self.series.is_empty() {
            out.push_str("  \"series\": []\n");
        } else {
            out.push_str("  \"series\": [\n");
            for (i, s) in self.series.iter().enumerate() {
                out.push_str(&s.to_json(4));
                out.push_str(if i + 1 < self.series.len() { ",\n" } else { "\n" });
            }
            out.push_str("  ]\n");
        }
        out.push('}');
        out
    }

    /// Print the table and write `results/<id>.json`.
    pub fn emit(&self, results_dir: &Path) {
        println!("{}", self.render());
        if let Err(e) = fs::create_dir_all(results_dir) {
            eprintln!("warning: cannot create {results_dir:?}: {e}");
            return;
        }
        let path = results_dir.join(format!("{}.json", self.id));
        if let Err(e) = fs::write(&path, self.to_json()) {
            eprintln!("warning: cannot write {path:?}: {e}");
        } else {
            println!("(wrote {})\n", path.display());
        }
    }
}

/// Default results directory: `results/` at the workspace root.
/// Anchored at this crate's manifest so binaries (run from the root)
/// and benches (run from the package dir) agree on the location.
pub fn results_dir() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_series() {
        let mut fig = FigureReport::new("t1", "demo", "budget", "rmse");
        let mut a = Series::new("A");
        a.push(5.0, Some(1.25));
        a.push(10.0, None);
        let mut b = Series::new("B");
        b.push(5.0, Some(2.0));
        b.push(10.0, Some(3.0));
        fig.add_series(a);
        fig.add_series(b);
        let s = fig.render();
        assert!(s.contains("budget\tA\tB"));
        assert!(s.contains("5\t1.2500\t2.0000"));
        assert!(s.contains("10\t-\t3.0000"));
    }

    #[test]
    fn json_shape_round_trips_fields() {
        let mut fig = FigureReport::new("t3", "q\"uote", "x", "y");
        let mut a = Series::new("A");
        a.push(1.0, Some(2.5));
        a.push(2.0, None);
        fig.add_series(a);
        let j = fig.to_json();
        assert!(j.contains("\"id\": \"t3\""));
        assert!(j.contains("\\\"uote"));
        assert!(j.contains("[1.0, 2.5]"));
        assert!(j.contains("[2.0, null]"));
    }

    #[test]
    fn emit_writes_json() {
        let dir = std::env::temp_dir().join("bw_report_test");
        let fig = FigureReport::new("t2", "demo", "x", "y");
        fig.emit(&dir);
        let path = dir.join("t2.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"id\": \"t2\""));
        std::fs::remove_file(path).ok();
    }
}
