//! Figure reports: aligned text tables plus JSON artifacts.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// One plotted series: `(x, y)` points (missing y = the method produced
/// no result at that x, e.g. nothing affordable).
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend name (e.g. "Bel Err").
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, Option<f64>)>,
}

impl Series {
    /// Build a series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: Option<f64>) {
        self.points.push((x, y));
    }
}

/// A reproduced figure: id, axis labels, and its series.
#[derive(Debug, Clone, Serialize)]
pub struct FigureReport {
    /// Figure id, e.g. "fig07a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// Build an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Render an aligned text table: one row per x, one column per
    /// series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        out.push_str(&format!("{}\n", header.join("\t")));
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                let y = s.points.get(i).and_then(|(_, y)| *y);
                row.push(match y {
                    Some(v) => format!("{v:.4}"),
                    None => "-".to_string(),
                });
            }
            out.push_str(&format!("{}\n", row.join("\t")));
        }
        out
    }

    /// Print the table and write `results/<id>.json`.
    pub fn emit(&self, results_dir: &Path) {
        println!("{}", self.render());
        if let Err(e) = fs::create_dir_all(results_dir) {
            eprintln!("warning: cannot create {results_dir:?}: {e}");
            return;
        }
        let path = results_dir.join(format!("{}.json", self.id));
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = fs::write(&path, json) {
                    eprintln!("warning: cannot write {path:?}: {e}");
                } else {
                    println!("(wrote {})\n", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {}: {e}", self.id),
        }
    }
}

/// Default results directory: `results/` at the workspace root (or the
/// current directory when run elsewhere).
pub fn results_dir() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    // When run via `cargo run -p bellwether-bench`, cwd is the workspace
    // root already.
    cwd.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_series() {
        let mut fig = FigureReport::new("t1", "demo", "budget", "rmse");
        let mut a = Series::new("A");
        a.push(5.0, Some(1.25));
        a.push(10.0, None);
        let mut b = Series::new("B");
        b.push(5.0, Some(2.0));
        b.push(10.0, Some(3.0));
        fig.add_series(a);
        fig.add_series(b);
        let s = fig.render();
        assert!(s.contains("budget\tA\tB"));
        assert!(s.contains("5\t1.2500\t2.0000"));
        assert!(s.contains("10\t-\t3.0000"));
    }

    #[test]
    fn emit_writes_json() {
        let dir = std::env::temp_dir().join("bw_report_test");
        let fig = FigureReport::new("t2", "demo", "x", "y");
        fig.emit(&dir);
        let path = dir.join("t2.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"id\": \"t2\""));
        std::fs::remove_file(path).ok();
    }
}
