//! Multi-process coordinator overhead vs. in-process sharded training.
//!
//! Emits `results/BENCH_coord.json` with four sections:
//!
//! * `config` — generated rows, regions, shard count, dataset bytes;
//! * `cells` — a full basic-bellwether training scan per
//!   (mode ∈ {inprocess, coordinator}) × threads, with wall-clock stats
//!   and the coordinator-process peak RSS of the timed samples; the
//!   coordinator rows pay one framed request/response round trip per
//!   region read against real worker OS processes;
//! * `workers` — per-worker spawn counts and the peak RSS each worker
//!   process reported in its graceful-shutdown `Bye` frame;
//! * `faulted` — the same scan under a seeded crash + hang +
//!   corrupt-frame campaign with a bounded restart budget: wall clock,
//!   the `coord/*` incident counters, and an `identical` flag checking
//!   the model snapshot bit-matches the in-process baseline.
//!
//! `BW_COORD_ROWS` overrides the dataset size (default 2M fact rows,
//! `BW_QUICK=1` drops to 100k). This bench re-invokes its own binary in
//! `--worker` mode to serve shards.

use bellwether_bench::report::json_f64;
use bellwether_bench::{results_dir, Harness};
use bellwether_coord::{Coordinator, CoordinatorConfig, WorkerFaultPlan};
use bellwether_core::{
    basic_search, BellwetherConfig, ErrorMeasure, ModelBuilder, RetryPolicy,
};
use bellwether_cube::{Parallelism, UniformCellCost};
use bellwether_datagen::{build_scale_workload, ScaleConfig, ScaleWorkload};
use bellwether_obs::Registry;
use bellwether_storage::{ShardedSource, TrainingSource};
use std::time::Duration;

fn env_rows(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config_for(threads: usize) -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads))
        .build()
        .unwrap()
}

/// Serialized basic-model snapshot over `src` — deterministic bytes, so
/// equality is model equality.
fn basic_snapshot(src: &dyn TrainingSource, w: &ScaleWorkload, threads: usize) -> Vec<u8> {
    let cost = UniformCellCost { rate: 1.0 };
    let report = basic_search(src, &w.region_space, &cost, &config_for(threads), w.items.len())
        .unwrap()
        .report()
        .expect("basic search found a region");
    let model = ModelBuilder::new(src, w.items.clone())
        .basic(report)
        .build()
        .unwrap();
    let path = std::env::temp_dir().join("bw_bench_coord_basic.bwsn");
    model.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

struct Cell {
    mode: &'static str,
    threads: usize,
    min_secs: f64,
    median_secs: f64,
    mean_secs: f64,
    peak_rss_bytes: Option<u64>,
}

fn main() {
    // The coordinator spawns this same binary per shard.
    bellwether_coord::maybe_run_worker();

    let quick = bellwether_bench::quick_mode();
    let rows = env_rows("BW_COORD_ROWS", if quick { 100_000 } else { 2_000_000 });
    let shards = 4usize;

    let cfg = ScaleConfig::sized_for(rows, 20260808);
    let w = build_scale_workload(&cfg);
    let dir = std::env::temp_dir().join("bw_bench_coord_data");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create shard dir");
    let manifest = w.write_sharded(&dir, shards).expect("write sharded");
    let dataset_bytes: u64 = manifest.shards.iter().map(|s| s.bytes).sum();
    eprintln!(
        "workload: {} regions × {} items = {} examples, {} bytes over {shards} shards",
        w.regions.len(),
        cfg.n_items,
        w.total_examples(),
        dataset_bytes
    );
    let bin = std::env::current_exe().expect("own binary");
    let cost = UniformCellCost { rate: 1.0 };

    let mut h = Harness::new();
    if !quick && std::env::var("BW_BENCH_SAMPLES").is_err() {
        h.sample_size = 3;
        h.warmup_iters = 1;
    }

    // --- Timed cells: in-process vs. process coordinator, clean plans.
    let mut cells: Vec<Cell> = Vec::new();
    let mut workers_json = String::new();
    for threads in [1usize, 4] {
        let config = config_for(threads);

        let src = ShardedSource::open(&dir).expect("open sharded");
        let r = h.bench(&format!("inprocess/threads={threads}"), || {
            basic_search(&src, &w.region_space, &cost, &config, cfg.n_items).unwrap()
        });
        cells.push(Cell {
            mode: "inprocess",
            threads,
            min_secs: r.min_secs(),
            median_secs: r.median_secs(),
            mean_secs: r.mean_secs(),
            peak_rss_bytes: r.peak_rss_bytes,
        });

        let coord = Coordinator::spawn_processes(
            &dir,
            &bin,
            WorkerFaultPlan::none(),
            CoordinatorConfig::new(),
        )
        .expect("spawn fleet");
        let r = h.bench(&format!("coordinator/threads={threads}"), || {
            basic_search(&coord, &w.region_space, &cost, &config, cfg.n_items).unwrap()
        });
        cells.push(Cell {
            mode: "coordinator",
            threads,
            min_secs: r.min_secs(),
            median_secs: r.median_secs(),
            mean_secs: r.mean_secs(),
            peak_rss_bytes: r.peak_rss_bytes,
        });
        if threads == 4 {
            // Per-worker peak RSS from the graceful shutdown of the
            // fleet that just served the timed samples.
            let exits = coord.shutdown();
            for (i, e) in exits.iter().enumerate() {
                workers_json.push_str(if i == 0 { "\n" } else { ",\n" });
                workers_json.push_str(&format!(
                    "    {{\"worker\": {}, \"spawns\": {}, \"peak_rss_bytes\": {}}}",
                    e.worker,
                    e.spawns,
                    e.peak_rss_bytes
                        .map_or_else(|| "null".to_string(), |b| b.to_string())
                ));
            }
        }
    }

    // --- Faulted campaign: crashes + hangs + corrupt frames absorbed
    // by the restart budget; the model must still bit-match the
    // in-process baseline.
    let baseline = basic_snapshot(&ShardedSource::open(&dir).unwrap(), &w, 4);
    let plan = WorkerFaultPlan::new(2026).with_crashes(1).with_hangs(1).with_corrupts(1);
    let coord_cfg = CoordinatorConfig::new()
        .deadline(Duration::from_millis(500))
        .expect("nonzero deadline")
        .restart_policy(
            RetryPolicy::builder()
                .max_attempts(8)
                .base_backoff(Duration::from_millis(1))
                .jitter_seed(2026)
                .build()
                .unwrap(),
        );
    let reg = Registry::new();
    let coord = Coordinator::spawn_processes_with_registry(&dir, &bin, plan, coord_cfg, &reg)
        .expect("spawn faulted fleet");
    let (faulted_bytes, faulted_secs) =
        bellwether_bench::time_secs(|| basic_snapshot(&coord, &w, 4));
    let identical = faulted_bytes == baseline;
    coord.shutdown();
    let snap = reg.snapshot();
    let n = |name: &str| snap.counter(name).unwrap_or(0);
    let restarts = n("coord/worker_restarts");
    println!(
        "faulted campaign: {restarts} restarts ({} crashes, {} timeouts, {} corrupt frames) \
         in {faulted_secs:.2}s, {}",
        n("coord/worker_crashes"),
        n("coord/worker_timeouts"),
        n("coord/corrupt_frames"),
        if identical { "IDENTICAL" } else { "DIVERGED" }
    );

    // --- Emit the report.
    let median = |mode: &str, threads: usize| {
        cells
            .iter()
            .find(|c| c.mode == mode && c.threads == threads)
            .map(|c| c.median_secs)
            .unwrap_or(f64::NAN)
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"rows\": {}, \"regions\": {}, \"items\": {}, \"shards\": {shards}, \"dataset_bytes\": {dataset_bytes}}},\n",
        w.total_examples(),
        w.regions.len(),
        cfg.n_items
    ));
    out.push_str("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"min_secs\": {}, \"median_secs\": {}, \"mean_secs\": {}, \"peak_rss_bytes\": {}}}",
            c.mode,
            c.threads,
            json_f64(c.min_secs),
            json_f64(c.median_secs),
            json_f64(c.mean_secs),
            c.peak_rss_bytes
                .map_or_else(|| "null".to_string(), |b| b.to_string())
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"overhead\": {{\"threads_1\": {}, \"threads_4\": {}}},\n",
        json_f64(median("coordinator", 1) / median("inprocess", 1)),
        json_f64(median("coordinator", 4) / median("inprocess", 4))
    ));
    out.push_str(&format!("  \"workers\": [{workers_json}\n  ],\n"));
    out.push_str(&format!(
        "  \"faulted\": {{\"secs\": {}, \"worker_restarts\": {restarts}, \"worker_crashes\": {}, \"worker_timeouts\": {}, \"corrupt_frames\": {}, \"identical\": {identical}}}\n",
        json_f64(faulted_secs),
        n("coord/worker_crashes"),
        n("coord/worker_timeouts"),
        n("coord/corrupt_frames")
    ));
    out.push_str("}\n");

    let path = results_dir().join("BENCH_coord.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&path, &out).expect("write BENCH_coord.json");
    println!("(wrote {})", path.display());

    std::fs::remove_dir_all(&dir).ok();
}
