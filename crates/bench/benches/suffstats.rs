//! The Theorem-1 ablation: merging pre-computed sufficient statistics
//! (the optimized cube's inner loop) versus refitting each nested
//! subset from raw examples (the single-scan cube's inner loop).

use bellwether_bench::{results_dir, Harness};
use bellwether_linreg::{RegSuffStats, RegressionData, SplitMix64};

const P: usize = 5;
const BASE_SUBSETS: usize = 64;
const ITEMS_PER_BASE: usize = 40;

fn base_data() -> Vec<RegressionData> {
    let mut rng = SplitMix64::new(42);
    (0..BASE_SUBSETS)
        .map(|_| {
            let mut d = RegressionData::new(P);
            for _ in 0..ITEMS_PER_BASE {
                let x: Vec<f64> = (0..P)
                    .map(|_| rng.next_u64() as f64 / u64::MAX as f64)
                    .collect();
                let y = x.iter().sum::<f64>() + rng.next_u64() as f64 / u64::MAX as f64;
                d.push(&x, y);
            }
            d
        })
        .collect()
}

fn main() {
    let data = base_data();
    let base_stats: Vec<RegSuffStats> =
        data.iter().map(RegSuffStats::from_dataset).collect();

    let mut h = Harness::new();

    // Optimized path: merge 64 base statistics into one and read SSE.
    h.bench("theorem1_merge_64_subsets", || {
        let mut acc = RegSuffStats::new(P);
        for s in &base_stats {
            acc.merge(s);
        }
        acc.sse().unwrap()
    });

    // Naive path: rebuild the union's statistic from raw examples.
    h.bench("refit_from_raw_64_subsets", || {
        let mut acc = RegSuffStats::new(P);
        for d in &data {
            acc.add_dataset(d);
        }
        acc.sse().unwrap()
    });

    // Fold-complement trick used by cross-validation.
    let mut full = RegSuffStats::new(P);
    for s in &base_stats {
        full.merge(s);
    }
    h.bench("suffstats_subtract_fold", || {
        let mut train = full.clone();
        train.subtract(&base_stats[0]);
        train.fit().unwrap()
    });

    h.emit_json(&results_dir().join("BENCH_suffstats.json"));
}
