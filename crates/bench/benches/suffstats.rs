//! The Theorem-1 ablation: merging pre-computed sufficient statistics
//! (the optimized cube's inner loop) versus refitting each nested
//! subset from raw examples (the single-scan cube's inner loop).

use bellwether_linreg::{RegSuffStats, RegressionData, SplitMix64};
use criterion::{criterion_group, criterion_main, Criterion};

const P: usize = 5;
const BASE_SUBSETS: usize = 64;
const ITEMS_PER_BASE: usize = 40;

fn base_data() -> Vec<RegressionData> {
    let mut rng = SplitMix64::new(42);
    (0..BASE_SUBSETS)
        .map(|_| {
            let mut d = RegressionData::new(P);
            for _ in 0..ITEMS_PER_BASE {
                let x: Vec<f64> = (0..P)
                    .map(|_| rng.next_u64() as f64 / u64::MAX as f64)
                    .collect();
                let y = x.iter().sum::<f64>() + rng.next_u64() as f64 / u64::MAX as f64;
                d.push(&x, y);
            }
            d
        })
        .collect()
}

fn bench_suffstats(c: &mut Criterion) {
    let data = base_data();
    let base_stats: Vec<RegSuffStats> =
        data.iter().map(RegSuffStats::from_dataset).collect();

    // Optimized path: merge 64 base statistics into one and read SSE.
    c.bench_function("theorem1_merge_64_subsets", |b| {
        b.iter(|| {
            let mut acc = RegSuffStats::new(P);
            for s in &base_stats {
                acc.merge(s);
            }
            acc.sse().unwrap()
        })
    });

    // Naive path: rebuild the union's statistic from raw examples.
    c.bench_function("refit_from_raw_64_subsets", |b| {
        b.iter(|| {
            let mut acc = RegSuffStats::new(P);
            for d in &data {
                acc.add_dataset(d);
            }
            acc.sse().unwrap()
        })
    });

    // Fold-complement trick used by cross-validation.
    c.bench_function("suffstats_subtract_fold", |b| {
        let mut full = RegSuffStats::new(P);
        for s in &base_stats {
            full.merge(s);
        }
        b.iter(|| {
            let mut train = full.clone();
            train.subtract(&base_stats[0]);
            train.fit().unwrap()
        })
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_suffstats
}
criterion_main!(benches);
