//! The algebraic k-fold CV engine under the region-fitting hot loops:
//! basic search, the RF tree and the naive cube on the retail workload,
//! across a thread × folds matrix.
//!
//! The headline series pits the engine (one suffstats pass per region,
//! k downdate-and-solve steps, zero per-fold dataset copies) against a
//! *refit* baseline that cross-validates the classic way — k per-fold
//! training-set copies and k Gram recomputations from raw rows — over
//! the same regions. `results/BENCH_region_fit.json` records
//! both; the CI smoke job asserts the algebraic engine wins at
//! `threads=1` and does not regress at `threads=4`. A traced run dumps
//! the engine's work counters (`linreg/*`) to
//! `results/BENCH_region_fit_metrics.json`.

use bellwether_bench::{emit_metrics_json, prepare_retail, results_dir, Harness};
use bellwether_core::{
    basic_search, build_naive_cube, build_rainforest, BellwetherConfig, CubeConfig,
    ErrorMeasure, TreeConfig,
};
use bellwether_cube::{CostModel, Parallelism, RegionId, RegionSpace};
use bellwether_datagen::RetailConfig;
use bellwether_linreg::{fit_wls, fold_assignment, ErrorEstimate, RegressionData};
use bellwether_obs::Registry;
use bellwether_storage::TrainingSource;

const SEED: u64 = 0xBE11;

fn problem(threads: usize, folds: usize) -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::CrossValidation { folds, seed: SEED })
        .parallelism(Parallelism::fixed(threads))
        .build()
        .unwrap()
}

/// Classic refit k-fold CV: for every fold, materialise the training
/// complement as a fresh dataset copy and rebuild the Gram matrix from
/// its raw rows — `O(k·n·p²)` plus `k` copies, against the engine's one
/// statistics pass and `k` downdated `O(p³)` solves. Fold shuffling and
/// held-out sweeps mirror the engine exactly, so the two agree to
/// rounding.
fn refit_cv_estimate(data: &RegressionData, k: usize, seed: u64) -> Option<ErrorEstimate> {
    let n = data.n();
    if n < 2 {
        return None;
    }
    let p = data.p();
    let assignment = fold_assignment(n, k, seed);
    let k = assignment.iter().copied().max().map_or(1, |m| m + 1);
    let mut fold_rmses = Vec::with_capacity(k);
    for fold in 0..k {
        let mut train = RegressionData::with_capacity(p, n);
        for (i, &f) in assignment.iter().enumerate() {
            if f != fold {
                train.push(&data.row(i), data.y(i));
            }
        }
        let Some(model) = fit_wls(&train) else { continue };
        let mut sse = 0.0;
        let mut count = 0usize;
        for (i, &f) in assignment.iter().enumerate() {
            if f == fold {
                let r = data.y(i) - data.predict_at(i, model.coefficients());
                sse += r * r;
                count += 1;
            }
        }
        if count > 0 {
            fold_rmses.push((sse / count as f64).sqrt());
        }
    }
    if fold_rmses.is_empty() {
        None
    } else {
        Some(ErrorEstimate::from_folds(&fold_rmses))
    }
}

/// The pre-engine basic search, reconstructed: per region, copy the
/// block into a dataset, run [`refit_cv_estimate`], then fit the
/// candidate model from raw rows and assemble the same report fields
/// `basic_search` produces (label, cost, model). Returns the min-error
/// (region index, value) with the same strict-< lowest-index
/// tie-breaking.
fn refit_basic_search(
    source: &dyn TrainingSource,
    space: &RegionSpace,
    cost_model: &dyn CostModel,
    min_examples: usize,
    folds: usize,
) -> Option<(usize, f64)> {
    let p = source.feature_arity();
    let mut reports: Vec<(usize, String, f64, f64)> = Vec::new();
    for i in 0..source.num_regions() {
        let block = source.read_region(i).expect("readable region");
        if block.n() < min_examples {
            continue;
        }
        let mut data = RegressionData::with_capacity(p, block.n());
        data.extend_from_cols(block.cols(), &block.targets);
        let Some(e) = refit_cv_estimate(&data, folds, SEED) else {
            continue;
        };
        let Some(model) = fit_wls(&data) else {
            continue;
        };
        let region = RegionId(source.region_coords(i).to_vec());
        let label = space.label(&region);
        let cost = cost_model.cost(space, &region);
        std::hint::black_box(&model);
        reports.push((i, label, cost, e.value));
    }
    reports
        .iter()
        .min_by(|a, b| a.3.total_cmp(&b.3).then(a.0.cmp(&b.0)))
        .map(|r| (r.0, r.3))
}

fn main() {
    let quick = bellwether_bench::quick_mode();
    // Wide regions: per-region row counts are what separate the engine
    // (one Gram pass) from the refit baseline (k Gram passes + k
    // training-set copies), so this workload carries more items per
    // region than the builder-scan bench.
    let mut retail_cfg = RetailConfig::mail_order(if quick { 400 } else { 600 }, 99);
    retail_cfg.months = if quick { 5 } else { 8 };
    retail_cfg.converge_month = retail_cfg.months - 2;
    retail_cfg.states = Some(vec![
        "MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH", "PA", "GA",
    ]);
    let retail = prepare_retail(&retail_cfg);
    let total_items = retail.data.items.len();
    eprintln!(
        "retail workload: {} regions × {total_items} items",
        retail.source.num_regions()
    );

    let mut h = Harness::new();

    // --- Basic search: the engine across the thread × folds matrix,
    // plus the refit baseline (inherently one dataset per fold) at
    // threads=1 for the headline comparison.
    for folds in [2usize, 5, 10] {
        for threads in [1usize, 4] {
            let pr = problem(threads, folds);
            h.bench(
                &format!("basic_search_retail/engine=algebraic/threads={threads}/folds={folds}"),
                || {
                    basic_search(
                        &retail.source,
                        &retail.data.space,
                        &retail.data.cost,
                        &pr,
                        total_items,
                    )
                    .unwrap()
                },
            );
        }
        h.bench(
            &format!("basic_search_retail/engine=refit/threads=1/folds={folds}"),
            || {
                refit_basic_search(
                    &retail.source,
                    &retail.data.space,
                    &retail.data.cost,
                    10,
                    folds,
                )
            },
        );
    }

    // The two paths must agree on the selected bellwether — a bench that
    // speeds up the wrong answer is not a speedup.
    for folds in [2usize, 5, 10] {
        let pr = problem(1, folds);
        let engine = basic_search(
            &retail.source,
            &retail.data.space,
            &retail.data.cost,
            &pr,
            total_items,
        )
        .unwrap();
        let engine_best = engine.bellwether().expect("engine found a bellwether");
        let (refit_idx, refit_err) =
            refit_basic_search(&retail.source, &retail.data.space, &retail.data.cost, 10, folds)
                .expect("refit found a bellwether");
        assert_eq!(
            engine_best.source_index, refit_idx,
            "engine and refit disagree on the bellwether at folds={folds}"
        );
        // Relative agreement, with an absolute floor: an exact-fit
        // region's CV error is pure rounding noise in both paths.
        let diff = (engine_best.error.value - refit_err).abs();
        assert!(
            diff < 1e-8 * refit_err.abs() || diff < 1e-9,
            "engine and refit errors diverge at folds={folds}: {} vs {refit_err}",
            engine_best.error.value
        );
    }

    // --- RF tree and naive cube on the same CV measures.
    let tc = TreeConfig {
        max_depth: 2,
        min_node_items: 30,
        ..TreeConfig::default()
    };
    let cc = CubeConfig {
        min_subset_size: 20,
    };
    for folds in [5usize, 10] {
        for threads in [1usize, 4] {
            let pr = problem(threads, folds);
            h.bench(
                &format!("tree_rainforest_retail_cv/threads={threads}/folds={folds}"),
                || {
                    build_rainforest(
                        &retail.source,
                        &retail.data.space,
                        &retail.data.items,
                        None,
                        &pr,
                        &tc,
                    )
                    .unwrap()
                },
            );
            h.bench(
                &format!("cube_naive_retail_cv/threads={threads}/folds={folds}"),
                || {
                    build_naive_cube(
                        &retail.source,
                        &retail.data.space,
                        &retail.data.item_space,
                        &retail.data.item_coords,
                        &pr,
                        &cc,
                    )
                    .unwrap()
                },
            );
        }
    }

    // --- One traced run: the engine's work counters for a CV-10 search.
    let registry = Registry::shared();
    let mut traced_pr = problem(1, 10);
    traced_pr.recorder = registry.clone();
    basic_search(
        &retail.source,
        &retail.data.space,
        &retail.data.cost,
        &traced_pr,
        total_items,
    )
    .unwrap();
    let snap = registry.snapshot();
    println!(
        "engine counters (CV-10 search): {} fits, {} folds evaluated, {} ridge rescues, {} scratch reuses / {} grows",
        snap.fits(),
        snap.cv_folds_evaluated(),
        snap.ridge_rescues(),
        snap.counter(bellwether_obs::names::LINREG_SCRATCH_REUSES).unwrap_or(0),
        snap.counter(bellwether_obs::names::LINREG_SCRATCH_GROWS).unwrap_or(0),
    );
    emit_metrics_json(&snap, &results_dir().join("BENCH_region_fit_metrics.json"));

    // --- Headline comparisons.
    let median = |name: &str| h.result(name).map(|r| r.median_secs());
    if let (Some(alg), Some(refit)) = (
        median("basic_search_retail/engine=algebraic/threads=1/folds=10"),
        median("basic_search_retail/engine=refit/threads=1/folds=10"),
    ) {
        println!(
            "CV-10 basic search, refit / algebraic (median, threads=1): {:.2}x",
            refit / alg
        );
    }
    if let (Some(t1), Some(t4)) = (
        median("basic_search_retail/engine=algebraic/threads=1/folds=10"),
        median("basic_search_retail/engine=algebraic/threads=4/folds=10"),
    ) {
        println!(
            "CV-10 basic search, threads=4 / threads=1 (median): {:.2}x",
            t4 / t1
        );
    }

    h.emit_json(&results_dir().join("BENCH_region_fit.json"));
}
