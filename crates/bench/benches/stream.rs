//! Incremental maintenance vs cold rebuild: the O(Δ) evidence.
//!
//! Emits `results/BENCH_stream.json` with three sections:
//!
//! * `config` — workload shape: fact rows, candidate regions, rows in
//!   the appended batch (the final week ≈ 1% of the timeline);
//! * `results` — wall-clock cells at threads = 1:
//!   - `engine_cold_rebuild` — full pipeline from scratch: CUBE pass
//!     over every fact row, every region block assembled and written
//!     to a sharded layout, full `basic_search`;
//!   - `engine_append_1pct` — [`StreamingBellwether::append`] of the
//!     same final week onto a warm engine: delta CUBE fold, dirty
//!     blocks appended as a new generation, dirty candidates
//!     re-scored (each timed sample consumes its own pre-built warm
//!     engine, so every sample performs the identical append);
//!   - `cube_cold` / `cube_append_1pct` — the CUBE layer alone;
//! * `speedup` — cold/append median ratios plus `bit_identical`: the
//!   appended engine's search state compared field-by-field (float
//!   bits included) against the cold rebuild.
//!
//! `BW_STREAM_WEEKS` / `BW_STREAM_LEAVES` / `BW_STREAM_ITEMS` override
//! the workload; `BW_QUICK=1` shrinks it for smoke runs.

use bellwether_bench::{results_dir, Harness};
use bellwether_bench::report::json_f64;
use bellwether_core::{
    basic_search, BasicSearchResult, BellwetherConfig, ErrorMeasure, StreamingBellwether,
};
use bellwether_core::training::region_block;
use bellwether_cube::{cube_pass, Parallelism, StreamingCube, UniformCellCost};
use bellwether_datagen::{build_stream_workload, StreamConfig, StreamWorkload};
use bellwether_storage::{even_shard_plan, ShardedSource, ShardedWriter};
use std::collections::VecDeque;
use std::path::PathBuf;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn stream_config() -> StreamConfig {
    let quick = bellwether_bench::quick_mode();
    let weeks = env_usize("BW_STREAM_WEEKS", if quick { 50 } else { 100 }) as u32;
    StreamConfig {
        n_items: env_usize("BW_STREAM_ITEMS", if quick { 80 } else { 250 }),
        weeks,
        leaves: env_usize("BW_STREAM_LEAVES", if quick { 4 } else { 16 }),
        item_hierarchy_leaves: 3,
        n_numeric_attrs: 2,
        bellwether_noise: 0.05,
        late_noise: 0.0005,
        open_week: 10.min(weeks - 1),
        seed: 20260808,
    }
}

fn search_config(threads: usize) -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads))
        .build()
        .unwrap()
}

/// Cold rebuild over weeks `[0, upto)` into `dir`; returns the search
/// result (the layout is left on disk for inspection / reuse).
fn cold_rebuild(wl: &StreamWorkload, upto: u32, dir: &PathBuf) -> BasicSearchResult {
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).expect("bench dir");
    let input = wl.input_range(0, upto);
    let cube = cube_pass(&wl.region_space, &input);
    let targets = wl.target_map();
    let p = (1 + wl.items.numeric_attrs().len() + cube.measure_names.len()) as u32;
    let plan = even_shard_plan(wl.regions.len(), 2);
    let mut writer =
        ShardedWriter::create(dir, p, wl.region_space.arity() as u32, plan).unwrap();
    for region in &wl.regions {
        writer
            .write_region(&region_block(&cube, region, &wl.items, &targets))
            .unwrap();
    }
    writer.finish().unwrap();
    let src = ShardedSource::open(dir).unwrap();
    basic_search(
        &src,
        &wl.region_space,
        &UniformCellCost { rate: 1.0 },
        &search_config(1),
        wl.items.len(),
    )
    .unwrap()
}

fn build_engine(wl: &StreamWorkload, base_weeks: u32, tag: usize) -> StreamingBellwether {
    let dir = std::env::temp_dir().join(format!("bw_bench_stream_engine_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    StreamingBellwether::create(
        &dir,
        &wl.region_space,
        &wl.input_range(0, base_weeks),
        &wl.item_universe(),
        wl.items.clone(),
        wl.target_map(),
        wl.regions.clone(),
        std::sync::Arc::new(UniformCellCost { rate: 1.0 }),
        search_config(1),
        wl.items.len(),
        2,
        64 << 20,
    )
    .unwrap()
}

/// Search states bit-identical? (Same field walk as the property
/// tests: float bits of cost / error / coefficients included.)
fn same_result(a: &BasicSearchResult, b: &BasicSearchResult) -> bool {
    a.best == b.best
        && a.skipped_regions == b.skipped_regions
        && a.reports.len() == b.reports.len()
        && a.reports.iter().zip(&b.reports).all(|(x, y)| {
            x.source_index == y.source_index
                && x.region == y.region
                && x.n_examples == y.n_examples
                && x.cost.to_bits() == y.cost.to_bits()
                && x.error.value.to_bits() == y.error.value.to_bits()
                && x.model.coefficients().len() == y.model.coefficients().len()
                && x.model
                    .coefficients()
                    .iter()
                    .zip(y.model.coefficients())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

fn main() {
    let cfg = stream_config();
    let wl = build_stream_workload(&cfg);
    let weeks = cfg.weeks;
    let base_weeks = weeks - 1;
    let delta = wl.input_range(base_weeks, weeks);
    let total_rows = wl.total_rows();
    let append_rows = delta.item_ids.len();
    println!(
        "stream workload: {} rows, {} regions, append batch {} rows ({:.2}%)",
        total_rows,
        wl.regions.len(),
        append_rows,
        100.0 * append_rows as f64 / total_rows as f64
    );

    let mut harness = Harness::new();
    let cold_dir = std::env::temp_dir().join("bw_bench_stream_cold");

    // Cold rebuild of the *full* timeline: what a batch pipeline pays
    // on every refresh.
    harness.bench("engine_cold_rebuild(threads=1)", || {
        cold_rebuild(&wl, weeks, &cold_dir)
    });
    let cold = cold_rebuild(&wl, weeks, &cold_dir);

    // One warm engine per timed sample: every sample appends the same
    // final week onto an identical base state. Capped at 5 samples —
    // the pre-built engines all sit in memory at once, so this cell's
    // peak RSS overstates a real deployment (which holds ONE warm
    // engine) by roughly the engine count.
    let (saved_samples, saved_warmup) = (harness.sample_size, harness.warmup_iters);
    harness.sample_size = harness.sample_size.min(5);
    harness.warmup_iters = 1;
    let n_engines = harness.warmup_iters + harness.sample_size;
    let mut engines: VecDeque<StreamingBellwether> = (0..n_engines)
        .map(|i| build_engine(&wl, base_weeks, i))
        .collect();
    let mut appended: Option<StreamingBellwether> = None;
    harness.bench("engine_append_1pct(threads=1)", || {
        let mut engine = engines.pop_front().expect("one engine per sample");
        engine.append(&delta).unwrap();
        appended = Some(engine);
    });
    let appended = appended.expect("at least one sample ran");
    harness.sample_size = saved_samples;
    harness.warmup_iters = saved_warmup;
    let bit_identical = same_result(&appended.search_result(), &cold);

    // The CUBE layer alone (clone cost of the retained state is paid
    // inside the sample; it is a flat memcpy, part of the honest
    // price of an append).
    let base_input = wl.input_range(0, base_weeks);
    let full_input = wl.full_input();
    harness.bench("cube_cold(threads=1)", || {
        cube_pass(&wl.region_space, &full_input)
    });
    let warm_cube = StreamingCube::new(
        &wl.region_space,
        &base_input,
        &wl.item_universe(),
        Parallelism::fixed(1),
    )
    .expect("key space fits");
    harness.bench("cube_append_1pct(threads=1)", || {
        let mut cube = warm_cube.clone();
        cube.append(&delta).unwrap()
    });

    let median = |name: &str| harness.result(name).unwrap().median_secs();
    let engine_speedup =
        median("engine_cold_rebuild(threads=1)") / median("engine_append_1pct(threads=1)");
    let cube_speedup = median("cube_cold(threads=1)") / median("cube_append_1pct(threads=1)");
    println!(
        "engine speedup {engine_speedup:.1}x, cube speedup {cube_speedup:.1}x, \
         bit_identical {bit_identical}"
    );

    let out = results_dir().join("BENCH_stream.json");
    let json = format!(
        "{{\n  \"config\": {{\n    \"rows\": {total_rows},\n    \"regions\": {},\n    \
         \"weeks\": {weeks},\n    \"append_rows\": {append_rows},\n    \
         \"append_fraction\": {},\n    \"shards\": 2,\n    \"threads\": 1\n  }},\n  \
         \"results\": {},\n  \"speedup\": {{\n    \"engine_cold_over_append\": {},\n    \
         \"cube_cold_over_append\": {},\n    \"bit_identical\": {bit_identical},\n    \
         \"note\": \"append-cell peak RSS holds every pre-built warm engine at once; \
a deployment holds one\"\n  }}\n}}\n",
        wl.regions.len(),
        json_f64(append_rows as f64 / total_rows as f64),
        harness.to_json(),
        json_f64(engine_speedup),
        json_f64(cube_speedup),
    );
    std::fs::write(&out, json).expect("write BENCH_stream.json");
    println!("wrote {}", out.display());

    assert!(bit_identical, "append must be bit-identical to cold rebuild");
    std::fs::remove_dir_all(&cold_dir).ok();
    for engine in engines.iter().chain(appended.dir().exists().then_some(&appended)) {
        std::fs::remove_dir_all(engine.dir()).ok();
    }
}
