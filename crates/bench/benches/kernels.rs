//! Microbenchmarks for the two hot kernels this repo vectorizes by
//! hand: sufficient-statistic accumulation (scalar row-at-a-time
//! [`RegSuffStats::add`] versus the batched columnar
//! [`RegSuffStats::add_rows`]) and CRC-32 (the bytewise reference
//! versus the slice-by-8 kernel fused into block decode). Results land
//! in `results/BENCH_kernels.json`; the CI kernel-smoke job asserts the
//! new kernels beat their scalar baselines on the largest configs.

use bellwether_bench::{results_dir, Harness};
use bellwether_linreg::{RegSuffStats, RegressionData, SplitMix64};
use bellwether_storage::crc32::{crc32, crc32_bytewise};

/// Deterministic dataset of `n` examples with `p` features, plus the
/// same rows materialised row-major for the scalar kernel (so the AoS
/// path is charged for its arithmetic, not for row extraction).
fn dataset(n: usize, p: usize) -> (RegressionData, Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SplitMix64::new(0x5EED ^ ((n as u64) << 8) ^ p as u64);
    let mut data = RegressionData::new(p);
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..p)
            .map(|_| rng.next_u64() as f64 / u64::MAX as f64 * 10.0 - 5.0)
            .collect();
        let y = x.iter().sum::<f64>() + rng.next_u64() as f64 / u64::MAX as f64;
        data.push(&x, y);
        rows.push(x);
        ys.push(y);
    }
    (data, rows, ys)
}

fn main() {
    let mut h = Harness::new();

    // --- Sufficient-statistic accumulation, n × p matrix.
    for &n in &[1024usize, 16384, 131072] {
        for &p in &[2usize, 4, 8] {
            let (data, rows, ys) = dataset(n, p);
            h.bench(&format!("suffstats_accumulate/n={n}/p={p}/kernel=scalar"), || {
                let mut s = RegSuffStats::new(p);
                for (x, &y) in rows.iter().zip(&ys) {
                    s.add(x, y, 1.0);
                }
                s
            });
            h.bench(&format!("suffstats_accumulate/n={n}/p={p}/kernel=batched"), || {
                let mut s = RegSuffStats::new(p);
                s.add_rows(&data);
                s
            });
            // The two kernels sum in different canonical orders; they
            // must agree to rounding (the property suite pins this —
            // here it guards against benching a broken kernel).
            let mut scalar = RegSuffStats::new(p);
            for (x, &y) in rows.iter().zip(&ys) {
                scalar.add(x, y, 1.0);
            }
            let mut batched = RegSuffStats::new(p);
            batched.add_rows(&data);
            let (a, b) = (scalar.sse().unwrap(), batched.sse().unwrap());
            assert!(
                (a - b).abs() <= 1e-7 * a.abs().max(1.0),
                "kernels diverged at n={n} p={p}: {a} vs {b}"
            );
        }
    }

    // --- CRC-32 over block-sized payloads.
    for &len in &[4096usize, 65536, 1 << 20] {
        let mut rng = SplitMix64::new(len as u64);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert_eq!(crc32(&data), crc32_bytewise(&data));
        h.bench(&format!("crc32/len={len}/kernel=bytewise"), || {
            crc32_bytewise(&data)
        });
        h.bench(&format!("crc32/len={len}/kernel=slice8"), || crc32(&data));
    }

    // --- Headline ratios.
    let median = |name: &str| h.result(name).map(|r| r.median_secs());
    if let (Some(scalar), Some(batched)) = (
        median("suffstats_accumulate/n=131072/p=8/kernel=scalar"),
        median("suffstats_accumulate/n=131072/p=8/kernel=batched"),
    ) {
        println!(
            "suffstats accumulate n=131072 p=8, scalar / batched (median): {:.2}x",
            scalar / batched
        );
    }
    if let (Some(bytewise), Some(slice8)) = (
        median("crc32/len=1048576/kernel=bytewise"),
        median("crc32/len=1048576/kernel=slice8"),
    ) {
        println!(
            "crc32 1 MiB, bytewise / slice-by-8 (median): {:.2}x",
            bytewise / slice8
        );
    }

    h.emit_json(&results_dir().join("BENCH_kernels.json"));
}
