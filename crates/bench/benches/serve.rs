//! The serving layer under load: concurrent clients × batch sizes
//! against a real `bellwether-serve` TCP server.
//!
//! Train-once / predict-many is the paper's amortisation argument; this
//! bench measures the predict-many side. One model (basic + tree +
//! cube) is trained on the mail-order workload, snapshotted, loaded
//! back, and served; then each (clients, batch) combination drives a
//! fixed number of keep-alive `POST /predict` requests per client and
//! reports client-observed throughput and latency:
//!
//! * `qps` — completed requests per second across all clients;
//! * `predictions_per_sec` — `qps × batch`;
//! * `p50_us` / `p99_us` — client-side request latency percentiles.
//!
//! Results land in `results/BENCH_serve.json`. `BW_QUICK=1` shrinks the
//! workload and request counts for smoke runs; `BW_BENCH_SAMPLES`
//! scales requests-per-client (`requests = 250 × samples`, quick mode
//! `50 × samples`).

use bellwether_bench::report::{json_f64, results_dir};
use bellwether_bench::{prepare_retail, quick_mode};
use bellwether_core::{
    basic_search, build_rainforest, build_single_scan_cube, BellwetherConfig, BellwetherModel,
    CubeConfig, ErrorMeasure, ModelBuilder, TreeConfig,
};
use bellwether_datagen::RetailConfig;
use bellwether_obs::Registry;
use bellwether_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn train_model(quick: bool) -> (Arc<BellwetherModel>, Vec<i64>) {
    let mut cfg = RetailConfig::mail_order_heterogeneous(if quick { 80 } else { 160 }, 7);
    cfg.months = 6;
    cfg.converge_month = 4;
    cfg.states = Some(vec!["MD", "WI", "CA", "TX", "NY", "IL"]);
    let prep = prepare_retail(&cfg);
    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let search = basic_search(
        &prep.source,
        &prep.data.space,
        &prep.data.cost,
        &problem,
        prep.data.items.len(),
    )
    .unwrap();
    let tree = build_rainforest(
        &prep.source,
        &prep.data.space,
        &prep.data.items,
        None,
        &problem,
        &TreeConfig {
            max_depth: 2,
            min_node_items: 30,
            ..TreeConfig::default()
        },
    )
    .unwrap();
    let cube = build_single_scan_cube(
        &prep.source,
        &prep.data.space,
        &prep.data.item_space,
        &prep.data.item_coords,
        &problem,
        &CubeConfig {
            min_subset_size: 20,
        },
    )
    .unwrap();
    let ids = prep.data.items.ids().to_vec();
    let model = ModelBuilder::new(&prep.source, prep.data.items)
        .basic(search.report().expect("a bellwether exists"))
        .tree(tree)
        .cube(cube, 0.95)
        .build()
        .unwrap();

    // Round-trip through the snapshot: the served model is the loaded
    // artifact, exactly as in production.
    let path = std::env::temp_dir().join("bw_bench_serve.bwsn");
    model.save(&path).expect("snapshot save");
    let loaded = BellwetherModel::load(&path).expect("snapshot load");
    let _ = std::fs::remove_file(&path);
    (loaded, ids)
}

/// One keep-alive client: `requests` POSTs of `batch` ids, returning
/// each request's client-observed latency in microseconds.
fn client_run(
    addr: std::net::SocketAddr,
    ids: &[i64],
    batch: usize,
    requests: usize,
) -> Vec<u64> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    let mut latencies = Vec::with_capacity(requests);
    let mut cursor = 0usize;
    for _ in 0..requests {
        let mut id_list = String::new();
        for k in 0..batch {
            if k > 0 {
                id_list.push(',');
            }
            id_list.push_str(&ids[(cursor + k) % ids.len()].to_string());
        }
        cursor = (cursor + batch) % ids.len();
        let body = format!("{{\"method\":\"basic\",\"ids\":[{id_list}]}}");
        let started = Instant::now();
        write!(
            conn,
            "POST /predict HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        read_response(&mut conn);
        latencies.push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    latencies
}

fn read_response(conn: &mut TcpStream) {
    let mut reader = BufReader::new(conn);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    assert!(status.contains("200"), "unexpected status: {status}");
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            len = v;
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
}

struct Combo {
    clients: usize,
    batch: usize,
    requests: usize,
    qps: f64,
    predictions_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let quick = quick_mode();
    let samples: usize = std::env::var("BW_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 3 } else { 10 });
    let per_client_base = if quick { 50 } else { 250 };
    let requests_per_client = per_client_base * samples.max(1);

    let (model, ids) = train_model(quick);
    eprintln!(
        "model ready: {} methods, {} items",
        model.methods().len(),
        ids.len()
    );

    let registry = Registry::shared();
    let config = ServeConfig::builder()
        .workers(4)
        .request_timeout(Duration::from_secs(10))
        .registry(registry.clone())
        .build()
        .unwrap();
    let handle = Server::bind("127.0.0.1:0", model, config).unwrap();
    let addr = handle.local_addr();

    let mut combos = Vec::new();
    for clients in [1usize, 2, 4] {
        for batch in [1usize, 16] {
            // Warm-up burst to stabilise worker caches and allocator.
            client_run(addr, &ids, batch, 20);

            let started = Instant::now();
            let threads: Vec<_> = (0..clients)
                .map(|_| {
                    let ids = ids.clone();
                    std::thread::spawn(move || {
                        client_run(addr, &ids, batch, requests_per_client)
                    })
                })
                .collect();
            let mut latencies: Vec<u64> = Vec::new();
            for t in threads {
                latencies.extend(t.join().expect("client thread"));
            }
            let wall = started.elapsed().as_secs_f64();
            latencies.sort_unstable();
            let total = (clients * requests_per_client) as f64;
            let combo = Combo {
                clients,
                batch,
                requests: clients * requests_per_client,
                qps: total / wall,
                predictions_per_sec: total * batch as f64 / wall,
                p50_us: percentile(&latencies, 0.50),
                p99_us: percentile(&latencies, 0.99),
            };
            println!(
                "clients={:<2} batch={:<3} {:>9.0} req/s {:>11.0} pred/s  p50 {:>6}us  p99 {:>6}us",
                combo.clients,
                combo.batch,
                combo.qps,
                combo.predictions_per_sec,
                combo.p50_us,
                combo.p99_us
            );
            combos.push(combo);
        }
    }

    // The server's own accounting must agree with the client count.
    let snap = registry.snapshot();
    let served = snap.counter("serve/requests").unwrap_or(0);
    let expected: u64 = combos.iter().map(|c| c.requests as u64).sum();
    assert!(
        served >= expected,
        "server counted {served} requests, clients sent at least {expected}"
    );
    handle.shutdown();

    let mut out = String::from("{\n  \"benchmarks\": [");
    for (i, c) in combos.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\n      \"name\": \"serve/clients={}/batch={}\",\n      \"clients\": {},\n      \"batch\": {},\n      \"requests\": {},\n      \"qps\": {},\n      \"predictions_per_sec\": {},\n      \"p50_us\": {},\n      \"p99_us\": {}\n    }}",
            c.clients,
            c.batch,
            c.clients,
            c.batch,
            c.requests,
            json_f64(c.qps),
            json_f64(c.predictions_per_sec),
            c.p50_us,
            c.p99_us
        ));
    }
    out.push_str("\n  ]\n}");
    let path = results_dir().join("BENCH_serve.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&path, out).expect("write BENCH_serve.json");
    println!("(wrote {})", path.display());
}
