//! The CUBE pass kernel (§4.2): all `(region, item)` aggregates in one
//! sweep over the fact data of a small retail dataset.
//!
//! This bench records the kernel trajectory the perf work is judged by:
//! the legacy hash-per-row kernel (`cube_pass_reference`) against the
//! dense-keyed chunked kernel (`cube_pass_with`) at 1/2/4/8 worker
//! threads, plus the end-to-end retail preparation. Results land in
//! `results/BENCH_cube_pass.json`.

use bellwether_bench::{emit_metrics_json, prepare_retail, results_dir, Harness};
use bellwether_core::build_cube_input;
use bellwether_cube::{cube_pass_reference, cube_pass_traced, cube_pass_with, Parallelism};
use bellwether_datagen::{generate_retail, RetailConfig};
use bellwether_obs::Registry;

fn main() {
    let mut cfg = RetailConfig::mail_order(150, 99);
    cfg.months = 8;
    cfg.converge_month = 6;
    cfg.states = Some(vec![
        "MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH", "PA", "GA",
    ]);
    let data = generate_retail(&cfg);
    let input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    eprintln!("fact rows: {}", data.db.fact.num_rows());

    let mut h = Harness::new();

    // The seed kernel: HashMap<(Vec<u32>, i64)> phase 1 plus
    // containing_regions re-materialised per base cell in phase 2.
    h.bench("cube_pass_reference_retail_150x8x10", || {
        cube_pass_reference(&data.space, &input)
    });

    // The dense-keyed kernel across the worker-thread matrix. Thread
    // count never changes the bits, only the wall clock.
    for threads in [1usize, 2, 4, 8] {
        h.bench(
            &format!("cube_pass_retail_150x8x10/threads={threads}"),
            || cube_pass_with(&data.space, &input, Parallelism::fixed(threads), None),
        );
    }

    h.bench("prepare_retail_end_to_end", || {
        let mut small = cfg.clone();
        small.n_items = 60;
        small.months = 5;
        small.converge_month = 4;
        prepare_retail(&small)
    });

    // The same kernel with a live recorder: the timing above measures
    // the disabled-recorder (one branch per phase) path; this bench
    // measures the enabled path, and the snapshot records the work
    // profile of one pass.
    let registry = Registry::shared();
    h.bench("cube_pass_retail_150x8x10/recorder=on", || {
        cube_pass_traced(&data.space, &input, Parallelism::fixed(1), registry.as_ref())
    });
    registry.reset();
    cube_pass_traced(&data.space, &input, Parallelism::fixed(1), registry.as_ref());
    emit_metrics_json(
        &registry.snapshot(),
        &results_dir().join("BENCH_cube_pass_metrics.json"),
    );

    let speedup = match (
        h.result("cube_pass_reference_retail_150x8x10"),
        h.result("cube_pass_retail_150x8x10/threads=1"),
    ) {
        (Some(reference), Some(new1)) => reference.median_secs() / new1.median_secs(),
        _ => f64::NAN,
    };
    println!("speedup (reference / new, 1 thread, median): {speedup:.2}x");

    h.emit_json(&results_dir().join("BENCH_cube_pass.json"));
}
