//! The CUBE pass kernel (§4.2): all `(region, item)` aggregates in one
//! sweep over the fact data of a small retail dataset.

use bellwether_bench::prepare_retail;
use bellwether_core::build_cube_input;
use bellwether_cube::cube_pass;
use bellwether_datagen::{generate_retail, RetailConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_cube_pass(c: &mut Criterion) {
    let mut cfg = RetailConfig::mail_order(150, 99);
    cfg.months = 8;
    cfg.converge_month = 6;
    cfg.states = Some(vec![
        "MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH", "PA", "GA",
    ]);
    let data = generate_retail(&cfg);
    let input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    eprintln!("fact rows: {}", data.db.fact.num_rows());

    c.bench_function("cube_pass_retail_150x8x10", |b| {
        b.iter(|| cube_pass(&data.space, &input))
    });

    c.bench_function("prepare_retail_end_to_end", |b| {
        let mut small = cfg.clone();
        small.n_items = 60;
        small.months = 5;
        small.converge_month = 4;
        b.iter(|| prepare_retail(&small))
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cube_pass
}
criterion_main!(benches);
