//! End-to-end algorithm kernels on a small scale workload: basic
//! search, naive vs RF tree, and the three cube construction
//! algorithms.

use bellwether_bench::{results_dir, Harness};
use bellwether_core::{
    basic_search, build_naive_cube, build_naive_tree, build_optimized_cube,
    build_optimized_cube_cv, build_rainforest, build_single_scan_cube, BellwetherConfig,
    CubeConfig, ErrorMeasure, TreeConfig,
};
use bellwether_cube::UniformCellCost;
use bellwether_datagen::{build_scale_workload, ScaleConfig, ScaleWorkload};
use bellwether_storage::MemorySource;

fn workload() -> (ScaleWorkload, MemorySource) {
    let cfg = ScaleConfig {
        n_items: 300,
        fact_dim_leaves: [4, 4],
        item_hierarchy_leaves: [3, 3, 3],
        n_numeric_attrs: 3,
        regional_features: 4,
        bellwether_noise: 0.05,
        seed: 31,
    };
    let w = build_scale_workload(&cfg);
    let src = w.memory_source();
    (w, src)
}

fn problem() -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap()
}

fn main() {
    let (w, src) = workload();
    let pr = problem();
    let cost = UniformCellCost { rate: 0.0 };
    let tc = TreeConfig {
        max_depth: 2,
        min_node_items: 60,
        max_numeric_splits: 4,
        ..TreeConfig::default()
    };
    let cc = CubeConfig {
        min_subset_size: 20,
    };

    let mut h = Harness::new();

    h.bench("basic_search_25regions", || {
        basic_search(&src, &w.region_space, &cost, &pr, 300).unwrap()
    });

    h.bench("tree_naive", || {
        build_naive_tree(&src, &w.region_space, &w.items, None, &pr, &tc).unwrap()
    });
    h.bench("tree_rainforest", || {
        build_rainforest(&src, &w.region_space, &w.items, None, &pr, &tc).unwrap()
    });

    h.bench("cube_naive", || {
        build_naive_cube(&src, &w.region_space, &w.item_space, &w.item_coords, &pr, &cc)
            .unwrap()
    });
    h.bench("cube_single_scan", || {
        build_single_scan_cube(
            &src,
            &w.region_space,
            &w.item_space,
            &w.item_coords,
            &pr,
            &cc,
        )
        .unwrap()
    });
    h.bench("cube_optimized", || {
        build_optimized_cube(
            &src,
            &w.region_space,
            &w.item_space,
            &w.item_coords,
            &pr,
            &cc,
        )
        .unwrap()
    });
    // Extension ablation: cross-validated errors via the algebraic
    // fold statistics (vs the single-scan building CV from raw rows).
    h.bench("cube_optimized_cv10", || {
        build_optimized_cube_cv(
            &src,
            &w.region_space,
            &w.item_space,
            &w.item_coords,
            &pr,
            &cc,
            10,
            42,
        )
        .unwrap()
    });
    let cv = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::CrossValidation {
            folds: 10,
            seed: 42,
        })
        .build()
        .unwrap();
    h.bench("cube_single_scan_cv10", || {
        build_single_scan_cube(
            &src,
            &w.region_space,
            &w.item_space,
            &w.item_coords,
            &cv,
            &cc,
        )
        .unwrap()
    });

    h.emit_json(&results_dir().join("BENCH_search.json"));
}
