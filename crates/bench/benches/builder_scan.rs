//! The shared region-scan engine (`bellwether_core::scan_regions`)
//! under the builders the paper benchmarks: the RF bellwether tree
//! (§5.2) and the bellwether cubes (§6).
//!
//! Three series land in `results/BENCH_builder_scan.json`:
//!
//! * a thread matrix for the RF tree and the optimized cube on an
//!   81-region scale workload (large enough to clear the
//!   `Parallelism::min_chunk` sequential fallback);
//! * the same builders on the small 150-item retail workload at
//!   `threads=1` vs `threads=4`, guarding the fallback against the
//!   regression the CUBE-pass bench once recorded;
//! * cache on/off on a real `DiskSource` — the RF tree's `l`
//!   level-scans and the naive cube's per-subset scans re-read every
//!   block, so the decoded-block cache removes all repeat decodes.
//!
//! A final traced run dumps the metrics snapshot (including
//! `storage/cache_*`) to `results/BENCH_builder_scan_metrics.json`.

use bellwether_bench::{emit_metrics_json, prepare_retail, results_dir, Harness};
use bellwether_core::{
    build_naive_cube, build_optimized_cube, build_rainforest, BellwetherConfig, CubeConfig,
    ErrorMeasure, TreeConfig,
};
use bellwether_cube::Parallelism;
use bellwether_datagen::{build_scale_workload, RetailConfig, ScaleConfig};
use bellwether_obs::Registry;
use bellwether_storage::{
    CachedSource, DiskSource, MemorySource, TrainingSource, TrainingWriter,
};

fn problem(threads: usize) -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads))
        .build()
        .unwrap()
}

/// Write the in-memory blocks out as a positioned-read disk file, so
/// the cache series measures real decode traffic.
fn write_blocks(src: &MemorySource, arity: u32, path: &std::path::Path) {
    let p = src.feature_arity() as u32;
    let mut w = TrainingWriter::create(path, p, arity).expect("create disk source");
    for block in src.blocks() {
        w.write_region(block).expect("write block");
    }
    w.finish().expect("finish disk source");
}

fn main() {
    let quick = bellwether_bench::quick_mode();
    let cfg = ScaleConfig {
        n_items: if quick { 120 } else { 300 },
        fact_dim_leaves: [8, 8],
        item_hierarchy_leaves: [3, 3, 3],
        n_numeric_attrs: 3,
        regional_features: 4,
        bellwether_noise: 0.05,
        seed: 31,
    };
    let w = build_scale_workload(&cfg);
    let src = w.memory_source();
    let num_regions = src.num_regions();
    eprintln!(
        "scale workload: {num_regions} regions × {} items",
        cfg.n_items
    );
    let tc = TreeConfig {
        max_depth: 2,
        min_node_items: 60,
        max_numeric_splits: 4,
        ..TreeConfig::default()
    };
    let cc = CubeConfig {
        min_subset_size: 20,
    };

    let mut h = Harness::new();

    // --- Thread matrix: 81 regions clear the min_chunk=16 fallback at
    // every tested thread count, so the scan engine really shards.
    for threads in [1usize, 2, 4] {
        let pr = problem(threads);
        h.bench(&format!("tree_rainforest_81regions/threads={threads}"), || {
            build_rainforest(&src, &w.region_space, &w.items, None, &pr, &tc).unwrap()
        });
        h.bench(&format!("cube_optimized_81regions/threads={threads}"), || {
            build_optimized_cube(
                &src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &pr,
                &cc,
            )
            .unwrap()
        });
    }

    // --- Small retail workload: the sequential fallback must keep
    // threads=4 from regressing against threads=1 (the fix for the
    // committed CUBE-pass regression, applied to the builder scans).
    let mut retail_cfg = RetailConfig::mail_order(150, 99);
    retail_cfg.months = if quick { 5 } else { 8 };
    retail_cfg.converge_month = retail_cfg.months - 2;
    retail_cfg.states = Some(vec![
        "MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH", "PA", "GA",
    ]);
    let retail = prepare_retail(&retail_cfg);
    eprintln!("retail workload: {} regions", retail.source.num_regions());
    let retail_tc = TreeConfig {
        max_depth: 2,
        min_node_items: 30,
        ..TreeConfig::default()
    };
    for threads in [1usize, 4] {
        let pr = problem(threads);
        h.bench(&format!("tree_rainforest_retail/threads={threads}"), || {
            build_rainforest(
                &retail.source,
                &retail.data.space,
                &retail.data.items,
                None,
                &pr,
                &retail_tc,
            )
            .unwrap()
        });
    }

    // --- Cache on/off against a real disk source. The RF tree re-reads
    // every block once per level; the naive cube once per subset.
    let disk_path = std::env::temp_dir().join("bw_builder_scan_source.bin");
    write_blocks(&src, w.region_space.arity() as u32, &disk_path);
    let budget: usize = src.blocks().iter().map(|b| b.encoded_len()).sum();
    let pr1 = problem(1);

    let disk = DiskSource::open(&disk_path).expect("open disk source");
    h.bench("tree_rainforest_disk/cache=off", || {
        build_rainforest(&disk, &w.region_space, &w.items, None, &pr1, &tc).unwrap()
    });
    let cached = CachedSource::new(DiskSource::open(&disk_path).unwrap(), budget);
    h.bench("tree_rainforest_disk/cache=on", || {
        build_rainforest(&cached, &w.region_space, &w.items, None, &pr1, &tc).unwrap()
    });

    let disk = DiskSource::open(&disk_path).expect("open disk source");
    h.bench("cube_naive_disk/cache=off", || {
        build_naive_cube(&disk, &w.region_space, &w.item_space, &w.item_coords, &pr1, &cc)
            .unwrap()
    });
    let cached = CachedSource::new(DiskSource::open(&disk_path).unwrap(), budget);
    h.bench("cube_naive_disk/cache=on", || {
        build_naive_cube(
            &cached,
            &w.region_space,
            &w.item_space,
            &w.item_coords,
            &pr1,
            &cc,
        )
        .unwrap()
    });

    // --- One traced run: IO + cache counters for a cold-cache RF build.
    let registry = Registry::shared();
    let traced = CachedSource::with_registry(
        DiskSource::open_with_registry(&disk_path, &registry).unwrap(),
        budget,
        &registry,
    );
    let traced_pr = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .recorder(registry.clone())
        .build()
        .unwrap();
    build_rainforest(&traced, &w.region_space, &w.items, None, &traced_pr, &tc).unwrap();
    build_naive_cube(
        &traced,
        &w.region_space,
        &w.item_space,
        &w.item_coords,
        &traced_pr,
        &cc,
    )
    .unwrap();
    let snap = traced.snapshot();
    println!(
        "cache hit rate (RF tree + naive cube, cold start): {:.1}% ({} hits / {} misses, {} real reads)",
        snap.cache_hit_rate() * 100.0,
        snap.cache_hits(),
        snap.cache_misses(),
        snap.regions_read(),
    );
    emit_metrics_json(
        &registry.snapshot(),
        &results_dir().join("BENCH_builder_scan_metrics.json"),
    );
    let _ = std::fs::remove_file(&disk_path);

    // --- Headline comparisons.
    let median = |name: &str| h.result(name).map(|r| r.median_secs());
    if let (Some(t1), Some(t4)) = (
        median("tree_rainforest_retail/threads=1"),
        median("tree_rainforest_retail/threads=4"),
    ) {
        println!("retail RF tree threads=4 / threads=1 (median): {:.2}x", t4 / t1);
    }
    if let (Some(off), Some(on)) = (
        median("tree_rainforest_disk/cache=off"),
        median("tree_rainforest_disk/cache=on"),
    ) {
        println!("RF tree disk cache speedup (off / on, median): {:.2}x", off / on);
    }
    if let (Some(off), Some(on)) = (
        median("cube_naive_disk/cache=off"),
        median("cube_naive_disk/cache=on"),
    ) {
        println!("naive cube disk cache speedup (off / on, median): {:.2}x", off / on);
    }

    h.emit_json(&results_dir().join("BENCH_builder_scan.json"));
}
