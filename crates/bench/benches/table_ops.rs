//! Relational-operator throughput: σ, ⋈ and α on a synthetic orders
//! table — the kernels under every feature/target query.

use bellwether_table::ops::{aggregate, filter, natural_join, AggExpr, AggFunc};
use bellwether_table::{CmpOp, Column, DataType, Predicate, Schema, Table};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn orders(n: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("item", DataType::Int),
        ("state", DataType::Str),
        ("profit", DataType::Float),
        ("ad", DataType::Int),
    ])
    .unwrap();
    let states = ["WI", "MD", "CA", "TX", "NY"];
    Table::new(
        schema,
        vec![
            Column::from_ints((0..n as i64).map(|i| i % 500).collect()),
            Column::from_strs(&(0..n).map(|i| states[i % 5]).collect::<Vec<_>>()),
            Column::from_floats((0..n).map(|i| (i % 97) as f64).collect()),
            Column::from_ints((0..n as i64).map(|i| i % 50).collect()),
        ],
    )
    .unwrap()
}

fn ads() -> Table {
    let schema =
        Schema::from_pairs(&[("ad", DataType::Int), ("size", DataType::Float)]).unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints((0..50).collect()),
            Column::from_floats((0..50).map(|i| i as f64).collect()),
        ],
    )
    .unwrap()
}

fn bench_table_ops(c: &mut Criterion) {
    let t = orders(100_000);
    let reference = ads();

    c.bench_function("filter_100k", |b| {
        let p = Predicate::eq("state", "WI").and(Predicate::cmp("profit", CmpOp::Gt, 50.0));
        b.iter(|| filter(&t, &p).unwrap())
    });

    c.bench_function("join_100k_x_50", |b| {
        b.iter(|| natural_join(&t, &reference, "ad").unwrap())
    });

    c.bench_function("aggregate_100k_by_item", |b| {
        let aggs = [
            AggExpr::new(AggFunc::Sum, "profit"),
            AggExpr::new(AggFunc::CountDistinct, "ad"),
        ];
        b.iter(|| aggregate(&t, &["item"], &aggs).unwrap())
    });

    c.bench_function("table_take_gather", |b| {
        let idx: Vec<usize> = (0..t.num_rows()).step_by(3).collect();
        b.iter_batched(|| idx.clone(), |idx| t.take(&idx), BatchSize::SmallInput)
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table_ops
}
criterion_main!(benches);
