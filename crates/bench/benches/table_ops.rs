//! Relational-operator throughput: σ, ⋈ and α on a synthetic orders
//! table — the kernels under every feature/target query.

use bellwether_bench::{results_dir, Harness};
use bellwether_table::ops::{aggregate, filter, natural_join, AggExpr, AggFunc};
use bellwether_table::{CmpOp, Column, DataType, Predicate, Schema, Table};

fn orders(n: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("item", DataType::Int),
        ("state", DataType::Str),
        ("profit", DataType::Float),
        ("ad", DataType::Int),
    ])
    .unwrap();
    let states = ["WI", "MD", "CA", "TX", "NY"];
    Table::new(
        schema,
        vec![
            Column::from_ints((0..n as i64).map(|i| i % 500).collect()),
            Column::from_strs(&(0..n).map(|i| states[i % 5]).collect::<Vec<_>>()),
            Column::from_floats((0..n).map(|i| (i % 97) as f64).collect()),
            Column::from_ints((0..n as i64).map(|i| i % 50).collect()),
        ],
    )
    .unwrap()
}

fn ads() -> Table {
    let schema =
        Schema::from_pairs(&[("ad", DataType::Int), ("size", DataType::Float)]).unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints((0..50).collect()),
            Column::from_floats((0..50).map(|i| i as f64).collect()),
        ],
    )
    .unwrap()
}

fn main() {
    let t = orders(100_000);
    let reference = ads();

    let mut h = Harness::new();

    let p = Predicate::eq("state", "WI").and(Predicate::cmp("profit", CmpOp::Gt, 50.0));
    h.bench("filter_100k", || filter(&t, &p).unwrap());

    h.bench("join_100k_x_50", || {
        natural_join(&t, &reference, "ad").unwrap()
    });

    let aggs = [
        AggExpr::new(AggFunc::Sum, "profit"),
        AggExpr::new(AggFunc::CountDistinct, "ad"),
    ];
    h.bench("aggregate_100k_by_item", || {
        aggregate(&t, &["item"], &aggs).unwrap()
    });

    let idx: Vec<usize> = (0..t.num_rows()).step_by(3).collect();
    h.bench("table_take_gather", || t.take(&idx));

    h.emit_json(&results_dir().join("BENCH_table_ops.json"));
}
