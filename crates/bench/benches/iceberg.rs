//! Iceberg-pruning ablation: bottom-up BUC-style enumeration of the
//! feasible regions versus testing every region directly.

use bellwether_bench::{results_dir, Harness};
use bellwether_cube::{
    feasible_regions, feasible_regions_naive, Constraints, Dimension, Hierarchy, RegionId,
    RegionSpace, UniformCellCost,
};
use std::collections::HashMap;

/// A deep space: 52 weeks × a 3-level location tree of ~60 nodes.
fn space() -> RegionSpace {
    let mut loc = Hierarchy::new("Loc", "All");
    for r in 0..4 {
        let rid = loc.add_child(0, format!("region{r}"));
        for d in 0..3 {
            let did = loc.add_child(rid, format!("r{r}d{d}"));
            for s in 0..4 {
                loc.add_child(did, format!("r{r}d{d}s{s}"));
            }
        }
    }
    RegionSpace::new(vec![
        Dimension::Interval {
            name: "Week".into(),
            max_t: 52,
        },
        Dimension::Hierarchy(loc),
    ])
}

fn main() {
    let s = space();
    let cost = UniformCellCost { rate: 1.0 };
    let coverage: HashMap<RegionId, usize> =
        s.all_regions().into_iter().map(|r| (r, 100)).collect();
    // A tight budget: only small regions pass, so pruning pays off.
    let cons = Constraints {
        budget: 8.0,
        min_coverage: 0.5,
        total_items: 100,
    };

    let mut h = Harness::new();
    h.bench("iceberg_pruned", || {
        feasible_regions(&s, &cost, &cons, &coverage)
    });
    h.bench("iceberg_naive", || {
        feasible_regions_naive(&s, &cost, &cons, &coverage)
    });
    h.emit_json(&results_dir().join("BENCH_iceberg.json"));
}
