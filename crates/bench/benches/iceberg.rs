//! Iceberg-pruning ablation: bottom-up BUC-style enumeration of the
//! feasible regions versus testing every region directly.

use bellwether_cube::{
    feasible_regions, feasible_regions_naive, Constraints, Dimension, Hierarchy, RegionId,
    RegionSpace, UniformCellCost,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;

/// A deep space: 52 weeks × a 3-level location tree of ~60 nodes.
fn space() -> RegionSpace {
    let mut loc = Hierarchy::new("Loc", "All");
    for r in 0..4 {
        let rid = loc.add_child(0, format!("region{r}"));
        for d in 0..3 {
            let did = loc.add_child(rid, format!("r{r}d{d}"));
            for s in 0..4 {
                loc.add_child(did, format!("r{r}d{d}s{s}"));
            }
        }
    }
    RegionSpace::new(vec![
        Dimension::Interval {
            name: "Week".into(),
            max_t: 52,
        },
        Dimension::Hierarchy(loc),
    ])
}

fn bench_iceberg(c: &mut Criterion) {
    let s = space();
    let cost = UniformCellCost { rate: 1.0 };
    let coverage: HashMap<RegionId, usize> =
        s.all_regions().into_iter().map(|r| (r, 100)).collect();
    // A tight budget: only small regions pass, so pruning pays off.
    let cons = Constraints {
        budget: 8.0,
        min_coverage: 0.5,
        total_items: 100,
    };

    c.bench_function("iceberg_pruned", |b| {
        b.iter(|| feasible_regions(&s, &cost, &cons, &coverage))
    });
    c.bench_function("iceberg_naive", |b| {
        b.iter(|| feasible_regions_naive(&s, &cost, &cons, &coverage))
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_iceberg
}
criterion_main!(benches);
