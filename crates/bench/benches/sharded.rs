//! Out-of-core sharded training at scale: the two-level deterministic
//! merge and the memory-budgeted external CUBE pass.
//!
//! Emits `results/BENCH_sharded.json` with four sections:
//!
//! * `config` — generated rows, regions, dataset bytes on disk;
//! * `curves` — rows × shards × threads scaling cells for a full
//!   basic-bellwether training scan over a `ShardedSource`, each with
//!   wall-clock stats and the peak resident set of the timed samples
//!   (the out-of-core evidence: peak RSS stays far below the dataset);
//! * `bit_identity` — all seven builders trained over sharded layouts
//!   with shards ∈ {1,2,4} × threads ∈ {1,2,4}; a builder passes when
//!   every combination serializes to byte-identical model snapshots;
//! * `external_cube` — the external CUBE pass with spilling forced by a
//!   tiny budget vs unlimited, bit-compared, plus the `shard/*` spill
//!   counters from the forced run.
//!
//! `BW_SHARDED_ROWS` overrides the curve dataset size (default 10M
//! fact rows, `BW_QUICK=1` drops to 200k); `BW_SHARDED_CUBE_ROWS`
//! overrides the external-CUBE row count.

use bellwether_bench::{peak_rss_bytes, reset_peak_rss, results_dir, Harness};
use bellwether_bench::report::{json_escape, json_f64};
use bellwether_core::{
    basic_search, basic_search_linear, build_naive_cube, build_naive_tree,
    build_optimized_cube, build_rainforest, build_single_scan_cube, BellwetherConfig,
    CubeConfig, ErrorMeasure, LinearCriterion, ModelBuilder, TreeConfig,
};
use bellwether_cube::cube_pass::{CubeInput, Measure};
use bellwether_cube::{
    cube_pass_external, Parallelism, UniformCellCost, UNLIMITED_BUDGET,
};
use bellwether_datagen::{build_scale_workload, ScaleConfig, ScaleWorkload};
use bellwether_obs::{names, NoopRecorder, Registry};
use bellwether_storage::{ShardedSource, TrainingSource};
use bellwether_table::ops::AggFunc;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn env_rows(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config_for(threads: usize) -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads))
        .build()
        .unwrap()
}

/// Write the workload sharded under a temp dir; returns (dir, bytes).
fn emit_sharded(w: &ScaleWorkload, tag: &str, shards: usize) -> (PathBuf, u64) {
    let dir = std::env::temp_dir().join(format!("bw_bench_sharded_{tag}_{shards}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create shard dir");
    let manifest = w.write_sharded(&dir, shards).expect("write sharded");
    let bytes = manifest.shards.iter().map(|s| s.bytes).sum();
    (dir, bytes)
}

/// Train one named builder over `src` and return the serialized model
/// snapshot bytes (deterministic, so byte equality == model equality).
fn snapshot_bytes(
    builder: &str,
    src: &dyn TrainingSource,
    w: &ScaleWorkload,
    threads: usize,
) -> Vec<u8> {
    let config = config_for(threads);
    let cost = UniformCellCost { rate: 1.0 };
    let tc = TreeConfig {
        max_depth: 2,
        min_node_items: 30,
        max_numeric_splits: 4,
        ..TreeConfig::default()
    };
    let cc = CubeConfig {
        min_subset_size: 10,
    };
    let n_items = w.items.len();
    let mb = ModelBuilder::new(src, w.items.clone());
    let mb = match builder {
        "basic" => mb.basic(
            basic_search(src, &w.region_space, &cost, &config, n_items)
                .unwrap()
                .report()
                .expect("basic search found a region"),
        ),
        "basic_linear" => mb.basic(
            basic_search_linear(
                src,
                &w.region_space,
                &cost,
                &config,
                n_items,
                LinearCriterion {
                    cost_weight: 1.0,
                    coverage_weight: 10.0,
                },
            )
            .unwrap()
            .report()
            .expect("linear search found a region"),
        ),
        "tree_naive" => mb.tree(
            build_naive_tree(src, &w.region_space, &w.items, None, &config, &tc).unwrap(),
        ),
        "tree_rainforest" => mb.tree(
            build_rainforest(src, &w.region_space, &w.items, None, &config, &tc).unwrap(),
        ),
        "cube_naive" => mb.cube(
            build_naive_cube(
                src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &config,
                &cc,
            )
            .unwrap(),
            0.95,
        ),
        "cube_single_scan" => mb.cube(
            build_single_scan_cube(
                src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &config,
                &cc,
            )
            .unwrap(),
            0.95,
        ),
        "cube_optimized" => mb.cube(
            build_optimized_cube(
                src,
                &w.region_space,
                &w.item_space,
                &w.item_coords,
                &config,
                &cc,
            )
            .unwrap(),
            0.95,
        ),
        other => panic!("unknown builder {other}"),
    };
    let model = mb.build().unwrap();
    let path = std::env::temp_dir().join(format!("bw_bench_sharded_{builder}.bwsn"));
    model.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Fact inputs for the external CUBE pass: one `CubeInput` per shard of
/// regions, `Sum(y)` + `Avg(y)` per (region-cell, item).
fn cube_inputs(w: &ScaleWorkload, regions: usize, shards: usize) -> Vec<CubeInput> {
    let per = regions.div_ceil(shards);
    (0..shards)
        .map(|s| {
            let lo = s * per;
            let hi = ((s + 1) * per).min(regions);
            let mut item_ids = Vec::new();
            let mut coords = Vec::new();
            let mut ys = Vec::new();
            for r in lo..hi {
                let block = w.region_block(r);
                for row in 0..block.n() {
                    item_ids.push(block.item_ids[row]);
                    coords.extend_from_slice(&w.regions[r].0);
                    ys.push(Some(block.targets[row]));
                }
            }
            CubeInput {
                item_ids,
                coords,
                measures: vec![
                    Measure::Numeric {
                        name: "sum_y".into(),
                        func: AggFunc::Sum,
                        values: ys.clone(),
                    },
                    Measure::Numeric {
                        name: "avg_y".into(),
                        func: AggFunc::Avg,
                        values: ys,
                    },
                ],
            }
        })
        .collect()
}

fn cube_result_digest(r: &bellwether_cube::cube_pass::CubeResult) -> BTreeMap<String, u64> {
    // Order-independent exact digest: per region, fold the bit patterns
    // of every (item, measure) slot with a position-sensitive hash.
    let mut out = BTreeMap::new();
    for (region, items) in &r.regions {
        let mut entries: Vec<(i64, u64)> = items
            .iter()
            .map(|(&id, vals)| {
                let mut h = 0xcbf29ce484222325u64;
                for v in vals {
                    let bits = v.map_or(u64::MAX, f64::to_bits);
                    h = (h ^ bits).wrapping_mul(0x100000001b3);
                }
                (id, h)
            })
            .collect();
        entries.sort_unstable();
        let mut h = 0xcbf29ce484222325u64;
        for (id, eh) in entries {
            h = (h ^ id as u64).wrapping_mul(0x100000001b3);
            h = (h ^ eh).wrapping_mul(0x100000001b3);
        }
        out.insert(format!("{region:?}"), h);
    }
    out
}

struct CurveCell {
    rows: usize,
    shards: usize,
    threads: usize,
    min_secs: f64,
    median_secs: f64,
    mean_secs: f64,
    peak_rss_bytes: Option<u64>,
}

fn main() {
    let quick = bellwether_bench::quick_mode();
    let rows = env_rows("BW_SHARDED_ROWS", if quick { 200_000 } else { 10_000_000 });
    let cube_rows = env_rows("BW_SHARDED_CUBE_ROWS", if quick { 100_000 } else { 2_000_000 });

    // --- Curve dataset: a ≥10M-row scale workload, streamed to sharded
    // layouts on disk (never materialized in RAM).
    let cfg = ScaleConfig::sized_for(rows, 20260808);
    let w = build_scale_workload(&cfg);
    let total_rows = w.total_examples();
    eprintln!(
        "curve workload: {} regions × {} items = {} examples",
        w.regions.len(),
        cfg.n_items,
        total_rows
    );

    let shard_counts = [1usize, 2, 4];
    let mut layouts: Vec<(usize, PathBuf, u64)> = Vec::new();
    for &s in &shard_counts {
        let (t, dir_bytes) = bellwether_bench::time_secs(|| emit_sharded(&w, "curve", s));
        let (dir, bytes) = t;
        eprintln!(
            "emitted shards={s}: {bytes} bytes in {:.2}s ({})",
            dir_bytes,
            dir.display()
        );
        layouts.push((s, dir, bytes));
    }
    let dataset_bytes = layouts[0].2;

    // --- Scaling curves: full basic training scan per (shards, threads)
    // cell, timed with per-cell peak RSS.
    let mut h = Harness::new();
    if !quick && std::env::var("BW_BENCH_SAMPLES").is_err() {
        h.sample_size = 3; // full passes over ≥10M rows; 3 samples suffice
        h.warmup_iters = 1;
    }
    let cost = UniformCellCost { rate: 1.0 };
    let mut curves: Vec<CurveCell> = Vec::new();
    for &(s, ref dir, _) in &layouts {
        for threads in [1usize, 2, 4] {
            let src = ShardedSource::open(dir).expect("open sharded");
            let config = config_for(threads);
            let name = format!("basic_scan/shards={s}/threads={threads}");
            let r = h.bench(&name, || {
                basic_search(&src, &w.region_space, &cost, &config, cfg.n_items).unwrap()
            });
            curves.push(CurveCell {
                rows: total_rows,
                shards: s,
                threads,
                min_secs: r.min_secs(),
                median_secs: r.median_secs(),
                mean_secs: r.mean_secs(),
                peak_rss_bytes: r.peak_rss_bytes,
            });
        }
    }

    // --- Bit identity: every builder × shards × threads serializes to
    // the same snapshot bytes. A moderate workload keeps the naive
    // (rescan-per-subset) builders tractable while still crossing shard
    // boundaries many times.
    let bi_cfg = ScaleConfig {
        n_items: if quick { 80 } else { 200 },
        fact_dim_leaves: [5, 5],
        item_hierarchy_leaves: [3, 3, 3],
        n_numeric_attrs: 3,
        regional_features: 4,
        bellwether_noise: 0.05,
        seed: 4242,
    };
    let bw = build_scale_workload(&bi_cfg);
    let bi_layouts: Vec<(usize, PathBuf)> = shard_counts
        .iter()
        .map(|&s| (s, emit_sharded(&bw, "bitid", s).0))
        .collect();
    const BUILDERS: [&str; 7] = [
        "basic",
        "basic_linear",
        "tree_naive",
        "tree_rainforest",
        "cube_naive",
        "cube_single_scan",
        "cube_optimized",
    ];
    let mut bit_identity: Vec<(String, bool)> = Vec::new();
    for builder in BUILDERS {
        let mut reference: Option<Vec<u8>> = None;
        let mut identical = true;
        for &(s, ref dir) in &bi_layouts {
            for threads in [1usize, 2, 4] {
                let src = ShardedSource::open(dir).expect("open sharded");
                let bytes = snapshot_bytes(builder, &src, &bw, threads);
                match &reference {
                    None => reference = Some(bytes),
                    Some(want) => {
                        if *want != bytes {
                            identical = false;
                            eprintln!(
                                "MISMATCH {builder}: shards={s} threads={threads} diverges"
                            );
                        }
                    }
                }
            }
        }
        println!(
            "bit_identity {builder:<18} shards x threads {}",
            if identical { "IDENTICAL" } else { "DIVERGED" }
        );
        bit_identity.push((builder.to_string(), identical));
    }

    // --- External CUBE: spilling forced by a tiny budget must be
    // bit-identical to the unlimited-budget pass over the same inputs.
    let cube_regions = cube_rows
        .div_ceil(cfg.n_items)
        .clamp(1, w.regions.len());
    let inputs = cube_inputs(&w, cube_regions, 4);
    let actual_cube_rows: usize = inputs.iter().map(|i| i.item_ids.len()).sum();
    eprintln!("external cube: {actual_cube_rows} rows across {} inputs", inputs.len());
    // 8 MiB of resident state forces spills at the full row count; CI
    // smoke runs shrink it further (`BW_SHARDED_BUDGET`) so even a tiny
    // dataset exercises the spill path.
    let budget = env_rows("BW_SHARDED_BUDGET", 8 << 20);
    let reg = Registry::shared();
    let par = Parallelism::fixed(4);
    let (spilled, spilled_secs) = bellwether_bench::time_secs(|| {
        cube_pass_external(&w.region_space, &inputs, par, budget, reg.as_ref()).unwrap()
    });
    let (unlimited, unlimited_secs) = bellwether_bench::time_secs(|| {
        cube_pass_external(&w.region_space, &inputs, par, UNLIMITED_BUDGET, &NoopRecorder)
            .unwrap()
    });
    let identical = cube_result_digest(&spilled) == cube_result_digest(&unlimited);
    let snap = reg.snapshot();
    let spills = snap.counter(names::SHARD_SPILLS).unwrap_or(0);
    let spill_bytes = snap.counter(names::SHARD_SPILL_BYTES).unwrap_or(0);
    let runs_merged = snap.counter(names::SHARD_RUNS_MERGED).unwrap_or(0);
    println!(
        "external cube: budget {budget} -> {spills} spills ({spill_bytes} bytes, {runs_merged} runs merged), \
         {spilled_secs:.2}s vs unlimited {unlimited_secs:.2}s, {}",
        if identical { "IDENTICAL" } else { "DIVERGED" }
    );

    // --- Emit the combined report.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"rows\": {total_rows}, \"regions\": {}, \"items\": {}, \"dataset_bytes\": {dataset_bytes}}},\n",
        w.regions.len(),
        bi_cfg.n_items.max(cfg.n_items)
    ));
    out.push_str("  \"curves\": [");
    for (i, c) in curves.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rows\": {}, \"shards\": {}, \"threads\": {}, \"min_secs\": {}, \"median_secs\": {}, \"mean_secs\": {}, \"peak_rss_bytes\": {}}}",
            c.rows,
            c.shards,
            c.threads,
            json_f64(c.min_secs),
            json_f64(c.median_secs),
            json_f64(c.mean_secs),
            c.peak_rss_bytes
                .map_or_else(|| "null".to_string(), |b| b.to_string())
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"bit_identity\": {");
    for (i, (b, ok)) in bit_identity.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    \"{}\": {}", json_escape(b), ok));
    }
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"external_cube\": {{\"rows\": {actual_cube_rows}, \"budget_bytes\": {budget}, \"spills\": {spills}, \"spill_bytes\": {spill_bytes}, \"runs_merged\": {runs_merged}, \"spilled_secs\": {}, \"unlimited_secs\": {}, \"identical\": {identical}}}\n",
        json_f64(spilled_secs),
        json_f64(unlimited_secs)
    ));
    out.push_str("}\n");

    let path = results_dir().join("BENCH_sharded.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&path, &out).expect("write BENCH_sharded.json");
    println!("(wrote {})", path.display());

    // Out-of-core evidence on stdout too.
    if let Some(peak) = peak_rss_bytes() {
        println!(
            "dataset {dataset_bytes} bytes on disk; process peak RSS {peak} bytes"
        );
    }
    let _ = reset_peak_rss();

    for (_, dir, _) in layouts {
        std::fs::remove_dir_all(dir).ok();
    }
    for (_, dir) in bi_layouts {
        std::fs::remove_dir_all(dir).ok();
    }
}
