//! Property-based tests of the relational operators.

use bellwether_prop::{check, Rng};
use bellwether_table::ops::sort::SortOrder;
use bellwether_table::ops::{
    aggregate, filter, natural_join, project_distinct, sort_by, AggExpr, AggFunc,
};
use bellwether_table::{CmpOp, Column, DataType, Predicate, Schema, Table, Value};
use std::collections::{HashMap, HashSet};

fn orders(rng: &mut Rng) -> Vec<(i64, String, f64)> {
    rng.vec_of(0, 80, |r| {
        (
            r.i64_in(0, 20),
            r.choice(&["wi", "md", "ca"]).to_string(),
            r.f64_in(-1000.0, 1000.0),
        )
    })
}

fn build_orders(rows: &[(i64, String, f64)]) -> Table {
    let schema = Schema::from_pairs(&[
        ("item", DataType::Int),
        ("state", DataType::Str),
        ("profit", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(rows.iter().map(|r| r.0).collect()),
            Column::from_strs(&rows.iter().map(|r| r.1.as_str()).collect::<Vec<_>>()),
            Column::from_floats(rows.iter().map(|r| r.2).collect()),
        ],
    )
    .unwrap()
}

#[test]
fn aggregate_sum_matches_manual() {
    check("aggregate_sum_matches_manual", 64, |rng| {
        let rows = orders(rng);
        let t = build_orders(&rows);
        let out = aggregate(&t, &["item"], &[AggExpr::new(AggFunc::Sum, "profit")]).unwrap();
        let mut manual: HashMap<i64, f64> = HashMap::new();
        for (item, _, profit) in &rows {
            *manual.entry(*item).or_insert(0.0) += profit;
        }
        assert_eq!(out.num_rows(), manual.len());
        for row in 0..out.num_rows() {
            let item = out.value(row, "item").unwrap().as_int().unwrap();
            let sum = out.value(row, "sum_profit").unwrap().as_float().unwrap();
            assert!((sum - manual[&item]).abs() < 1e-6);
        }
    });
}

#[test]
fn filter_partitions_rows() {
    check("filter_partitions_rows", 64, |rng| {
        let rows = orders(rng);
        let threshold = rng.f64_in(-1000.0, 1000.0);
        let t = build_orders(&rows);
        let p = Predicate::cmp("profit", CmpOp::Ge, threshold);
        let yes = filter(&t, &p).unwrap();
        let no = filter(&t, &Predicate::Not(Box::new(p))).unwrap();
        assert_eq!(yes.num_rows() + no.num_rows(), t.num_rows());
        for row in 0..yes.num_rows() {
            assert!(yes.value(row, "profit").unwrap().as_float().unwrap() >= threshold);
        }
        for row in 0..no.num_rows() {
            assert!(no.value(row, "profit").unwrap().as_float().unwrap() < threshold);
        }
    });
}

#[test]
fn distinct_projection_is_exactly_the_value_set() {
    check("distinct_projection_is_exactly_the_value_set", 64, |rng| {
        let rows = orders(rng);
        let t = build_orders(&rows);
        let out = project_distinct(&t, &["state"]).unwrap();
        let expect: HashSet<&str> = rows.iter().map(|r| r.1.as_str()).collect();
        assert_eq!(out.num_rows(), expect.len());
        let got: HashSet<String> = (0..out.num_rows())
            .map(|r| out.value(r, "state").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            got,
            expect.into_iter().map(String::from).collect::<HashSet<_>>()
        );
    });
}

#[test]
fn join_respects_fk_semantics() {
    check("join_respects_fk_semantics", 64, |rng| {
        let rows = orders(rng);
        let t = build_orders(&rows);
        // Reference table covering items 0..10 only.
        let items = Table::new(
            Schema::from_pairs(&[("item", DataType::Int), ("weight", DataType::Float)])
                .unwrap(),
            vec![
                Column::from_ints((0..10).collect()),
                Column::from_floats((0..10).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let joined = natural_join(&t, &items, "item").unwrap();
        let expect = rows.iter().filter(|r| r.0 < 10).count();
        assert_eq!(joined.num_rows(), expect);
        for row in 0..joined.num_rows() {
            let item = joined.value(row, "item").unwrap().as_int().unwrap();
            let w = joined.value(row, "weight").unwrap().as_float().unwrap();
            assert_eq!(w, item as f64);
        }
    });
}

#[test]
fn sort_produces_ordered_permutation() {
    check("sort_produces_ordered_permutation", 64, |rng| {
        let rows = orders(rng);
        let t = build_orders(&rows);
        let out =
            sort_by(&t, &[("profit", SortOrder::Asc), ("item", SortOrder::Desc)]).unwrap();
        assert_eq!(out.num_rows(), t.num_rows());
        for row in 1..out.num_rows() {
            let a = out.value(row - 1, "profit").unwrap();
            let b = out.value(row, "profit").unwrap();
            assert!(a <= b);
            if a == b {
                let ia = out.value(row - 1, "item").unwrap();
                let ib = out.value(row, "item").unwrap();
                assert!(ia >= ib);
            }
        }
        // Same multiset of rows.
        let mut before: Vec<String> = (0..t.num_rows())
            .map(|r| format!("{:?}", t.row(r)))
            .collect();
        let mut after: Vec<String> = (0..out.num_rows())
            .map(|r| format!("{:?}", out.row(r)))
            .collect();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    });
}

#[test]
fn csv_round_trip() {
    check("csv_round_trip", 64, |rng| {
        let rows = orders(rng);
        let t = build_orders(&rows);
        let mut buf = Vec::new();
        bellwether_table::csv::write_csv(&t, &mut buf).unwrap();
        let back =
            bellwether_table::csv::read_csv(t.schema().clone(), std::io::Cursor::new(buf))
                .unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for row in 0..t.num_rows() {
            assert_eq!(back.value(row, "item").unwrap(), t.value(row, "item").unwrap());
            assert_eq!(
                back.value(row, "state").unwrap(),
                t.value(row, "state").unwrap()
            );
            let a = back.value(row, "profit").unwrap().as_float().unwrap();
            let b = t.value(row, "profit").unwrap().as_float().unwrap();
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
        }
    });
}

#[test]
fn take_concat_identity() {
    check("take_concat_identity", 64, |rng| {
        let rows = orders(rng);
        let t = build_orders(&rows);
        if t.num_rows() == 0 {
            return;
        }
        let half = t.num_rows() / 2;
        let first: Vec<usize> = (0..half).collect();
        let second: Vec<usize> = (half..t.num_rows()).collect();
        let a = t.take(&first);
        let b = t.take(&second);
        let back = Table::concat(&[&a, &b]).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for row in 0..t.num_rows() {
            assert_eq!(back.row(row), t.row(row));
        }
    });
}

#[test]
fn value_ordering_total() {
    check("value_ordering_total", 128, |rng| {
        let a = Value::Float(rng.f64_in(-1e6, 1e6));
        let b = Value::Float(rng.f64_in(-1e6, 1e6));
        let c = Value::Float(rng.f64_in(-1e6, 1e6));
        // transitivity spot check
        if a <= b && b <= c {
            assert!(a <= c);
        }
    });
}
