//! Property-based tests of the relational operators.

use bellwether_table::ops::{
    aggregate, filter, natural_join, project_distinct, sort_by, AggExpr, AggFunc,
};
use bellwether_table::ops::sort::SortOrder;
use bellwether_table::{
    CmpOp, Column, DataType, Predicate, Schema, Table, Value,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn orders_strategy() -> impl Strategy<Value = Vec<(i64, String, f64)>> {
    prop::collection::vec(
        (
            0i64..20,
            prop_oneof![Just("wi"), Just("md"), Just("ca")].prop_map(String::from),
            -1000.0..1000.0f64,
        ),
        0..80,
    )
}

fn build_orders(rows: &[(i64, String, f64)]) -> Table {
    let schema = Schema::from_pairs(&[
        ("item", DataType::Int),
        ("state", DataType::Str),
        ("profit", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(rows.iter().map(|r| r.0).collect()),
            Column::from_strs(&rows.iter().map(|r| r.1.as_str()).collect::<Vec<_>>()),
            Column::from_floats(rows.iter().map(|r| r.2).collect()),
        ],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregate_sum_matches_manual(rows in orders_strategy()) {
        let t = build_orders(&rows);
        let out = aggregate(&t, &["item"], &[AggExpr::new(AggFunc::Sum, "profit")]).unwrap();
        let mut manual: HashMap<i64, f64> = HashMap::new();
        for (item, _, profit) in &rows {
            *manual.entry(*item).or_insert(0.0) += profit;
        }
        prop_assert_eq!(out.num_rows(), manual.len());
        for row in 0..out.num_rows() {
            let item = out.value(row, "item").unwrap().as_int().unwrap();
            let sum = out.value(row, "sum_profit").unwrap().as_float().unwrap();
            prop_assert!((sum - manual[&item]).abs() < 1e-6);
        }
    }

    #[test]
    fn filter_partitions_rows(rows in orders_strategy(), threshold in -1000.0..1000.0f64) {
        let t = build_orders(&rows);
        let p = Predicate::cmp("profit", CmpOp::Ge, threshold);
        let yes = filter(&t, &p).unwrap();
        let no = filter(&t, &Predicate::Not(Box::new(p))).unwrap();
        prop_assert_eq!(yes.num_rows() + no.num_rows(), t.num_rows());
        for row in 0..yes.num_rows() {
            prop_assert!(yes.value(row, "profit").unwrap().as_float().unwrap() >= threshold);
        }
        for row in 0..no.num_rows() {
            prop_assert!(no.value(row, "profit").unwrap().as_float().unwrap() < threshold);
        }
    }

    #[test]
    fn distinct_projection_is_exactly_the_value_set(rows in orders_strategy()) {
        let t = build_orders(&rows);
        let out = project_distinct(&t, &["state"]).unwrap();
        let expect: HashSet<&str> = rows.iter().map(|r| r.1.as_str()).collect();
        prop_assert_eq!(out.num_rows(), expect.len());
        let got: HashSet<String> = (0..out.num_rows())
            .map(|r| out.value(r, "state").unwrap().as_str().unwrap().to_string())
            .collect();
        prop_assert_eq!(got, expect.into_iter().map(String::from).collect());
    }

    #[test]
    fn join_respects_fk_semantics(rows in orders_strategy()) {
        let t = build_orders(&rows);
        // Reference table covering items 0..10 only.
        let items = Table::new(
            Schema::from_pairs(&[("item", DataType::Int), ("weight", DataType::Float)]).unwrap(),
            vec![
                Column::from_ints((0..10).collect()),
                Column::from_floats((0..10).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let joined = natural_join(&t, &items, "item").unwrap();
        let expect = rows.iter().filter(|r| r.0 < 10).count();
        prop_assert_eq!(joined.num_rows(), expect);
        for row in 0..joined.num_rows() {
            let item = joined.value(row, "item").unwrap().as_int().unwrap();
            let w = joined.value(row, "weight").unwrap().as_float().unwrap();
            prop_assert_eq!(w, item as f64);
        }
    }

    #[test]
    fn sort_produces_ordered_permutation(rows in orders_strategy()) {
        let t = build_orders(&rows);
        let out = sort_by(&t, &[("profit", SortOrder::Asc), ("item", SortOrder::Desc)]).unwrap();
        prop_assert_eq!(out.num_rows(), t.num_rows());
        for row in 1..out.num_rows() {
            let a = out.value(row - 1, "profit").unwrap();
            let b = out.value(row, "profit").unwrap();
            prop_assert!(a <= b);
            if a == b {
                let ia = out.value(row - 1, "item").unwrap();
                let ib = out.value(row, "item").unwrap();
                prop_assert!(ia >= ib);
            }
        }
        // Same multiset of rows.
        let mut before: Vec<String> = (0..t.num_rows())
            .map(|r| format!("{:?}", t.row(r)))
            .collect();
        let mut after: Vec<String> = (0..out.num_rows())
            .map(|r| format!("{:?}", out.row(r)))
            .collect();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn csv_round_trip(rows in orders_strategy()) {
        let t = build_orders(&rows);
        let mut buf = Vec::new();
        bellwether_table::csv::write_csv(&t, &mut buf).unwrap();
        let back = bellwether_table::csv::read_csv(t.schema().clone(), std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for row in 0..t.num_rows() {
            prop_assert_eq!(back.value(row, "item").unwrap(), t.value(row, "item").unwrap());
            prop_assert_eq!(back.value(row, "state").unwrap(), t.value(row, "state").unwrap());
            let a = back.value(row, "profit").unwrap().as_float().unwrap();
            let b = t.value(row, "profit").unwrap().as_float().unwrap();
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn take_concat_identity(rows in orders_strategy()) {
        let t = build_orders(&rows);
        if t.num_rows() == 0 {
            return Ok(());
        }
        let half = t.num_rows() / 2;
        let first: Vec<usize> = (0..half).collect();
        let second: Vec<usize> = (half..t.num_rows()).collect();
        let a = t.take(&first);
        let b = t.take(&second);
        let back = Table::concat(&[&a, &b]).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for row in 0..t.num_rows() {
            prop_assert_eq!(back.row(row), t.row(row));
        }
    }

    #[test]
    fn value_ordering_total(xs in prop::collection::vec(-1e6..1e6f64, 3)) {
        let a = Value::Float(xs[0]);
        let b = Value::Float(xs[1]);
        let c = Value::Float(xs[2]);
        // transitivity spot check
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }
}
