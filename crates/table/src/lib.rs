//! # bellwether-table
//!
//! Typed columnar tables plus the extended relational algebra (Table 1 of
//! the paper) that bellwether analysis is defined over: selection σ,
//! duplicate-free projection π, key/foreign-key natural join ⋈, and
//! group-by aggregation α with SUM/MIN/MAX/AVG/COUNT/COUNT-DISTINCT.
//!
//! The design goal is a small, fully auditable in-memory relational
//! substrate — not a general query engine. Operators materialise eagerly;
//! there is no planner. This is sufficient (and fast enough) for the
//! paper's workloads, where heavy lifting happens in the CUBE pass of
//! `bellwether-cube` and the scan algorithms of `bellwether-core`.
//!
//! ## Quick example
//!
//! ```
//! use bellwether_table::{
//!     Column, Schema, Table, DataType, Predicate,
//!     ops::{filter, aggregate, AggExpr, AggFunc},
//! };
//!
//! let orders = Table::new(
//!     Schema::from_pairs(&[("item", DataType::Int), ("profit", DataType::Float)]).unwrap(),
//!     vec![
//!         Column::from_ints(vec![1, 1, 2]),
//!         Column::from_floats(vec![10.0, 5.0, 7.0]),
//!     ],
//! ).unwrap();
//!
//! // α_{item, sum(profit)} σ_{profit > 6} orders
//! let selected = filter(&orders, &Predicate::cmp("profit", bellwether_table::CmpOp::Gt, 6.0)).unwrap();
//! let per_item = aggregate(&selected, &["item"], &[AggExpr::new(AggFunc::Sum, "profit")]).unwrap();
//! assert_eq!(per_item.num_rows(), 2);
//! ```

#![warn(missing_docs)]

pub mod bitmap;
pub mod column;
pub mod csv;
pub mod error;
pub mod expr;
pub mod ops;
pub mod schema;
pub mod table;
pub mod value;

pub use bitmap::Bitmap;
pub use column::{Column, ColumnBuilder, ColumnData};
pub use error::{Result, TableError};
pub use expr::{CmpOp, Predicate};
pub use schema::{Field, Schema, SchemaRef};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};
