//! The extended relational algebra of Table 1 in the paper:
//!
//! | operator | module |
//! |---|---|
//! | σ (selection)                  | [`mod@filter`] |
//! | π (duplicate-free projection)  | [`project`] |
//! | ⋈ (key/foreign-key natural join) | [`join`] |
//! | α (group-by aggregation)       | [`mod@aggregate`] |
//!
//! plus deterministic sorting ([`sort`]) used by tests and displays.

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod project;
pub mod sort;

pub use aggregate::{aggregate, AggExpr, AggFunc};
pub use filter::filter;
pub use join::natural_join;
pub use project::project_distinct;
pub use sort::sort_by;
