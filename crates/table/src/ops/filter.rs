//! Selection (σ): keep the rows matching a predicate.

use crate::error::Result;
use crate::expr::Predicate;
use crate::table::Table;

/// σ_predicate(table): materialise the matching rows.
pub fn filter(table: &Table, predicate: &Predicate) -> Result<Table> {
    let selection = predicate.eval(table)?;
    Ok(table.filter(&selection))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    #[test]
    fn filters_rows() {
        let schema =
            Schema::from_pairs(&[("id", DataType::Int), ("st", DataType::Str)]).unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_strs(&["wi", "md", "wi"]),
            ],
        )
        .unwrap();
        let out = filter(&t, &Predicate::eq("st", "wi")).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, "id").unwrap(), Value::Int(3));
    }

    #[test]
    fn empty_result_keeps_schema() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]).unwrap();
        let t = Table::new(schema, vec![Column::from_ints(vec![1])]).unwrap();
        let out = filter(&t, &Predicate::eq("id", 99i64)).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().names(), vec!["id"]);
    }
}
