//! Duplicate-free projection (π).
//!
//! `π_FK F` in the paper's third feature-query form needs *distinct*
//! foreign-key values so each referenced row is aggregated once. Rows are
//! deduplicated by hashing their value tuples; the first occurrence wins,
//! so output order is first-appearance order (deterministic).

use crate::error::Result;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;

/// π_columns(table) with duplicate elimination.
pub fn project_distinct(table: &Table, columns: &[&str]) -> Result<Table> {
    let projected = table.select(columns)?;
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut keep: Vec<usize> = Vec::new();
    for row in 0..projected.num_rows() {
        let key = projected.row(row);
        if seen.insert(key) {
            keep.push(row);
        }
    }
    Ok(projected.take(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn orders() -> Table {
        let schema = Schema::from_pairs(&[
            ("item", DataType::Int),
            ("ad", DataType::Int),
            ("qty", DataType::Int),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 1, 2, 1]),
                Column::from_ints(vec![10, 10, 11, 12]),
                Column::from_ints(vec![5, 6, 7, 8]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dedup_single_column() {
        let out = project_distinct(&orders(), &["ad"]).unwrap();
        assert_eq!(out.num_rows(), 3);
        let ads: Vec<i64> = (0..3)
            .map(|r| out.value(r, "ad").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ads, vec![10, 11, 12]); // first-appearance order
    }

    #[test]
    fn dedup_multi_column() {
        let out = project_distinct(&orders(), &["item", "ad"]).unwrap();
        assert_eq!(out.num_rows(), 3); // (1,10) appears twice
    }

    #[test]
    fn missing_column_errors() {
        assert!(project_distinct(&orders(), &["nope"]).is_err());
    }

    #[test]
    fn distinct_of_distinct_is_identity() {
        let once = project_distinct(&orders(), &["item"]).unwrap();
        let twice = project_distinct(&once, &["item"]).unwrap();
        assert_eq!(once.num_rows(), twice.num_rows());
    }
}
