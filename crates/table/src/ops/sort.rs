//! Deterministic multi-key sorting, used for stable test assertions and
//! human-readable experiment output.

use crate::error::Result;
use crate::table::Table;

/// Sort direction per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (NULL first, per `Value::total_cmp`).
    Asc,
    /// Descending.
    Desc,
}

/// Sort `table` by the given `(column, order)` keys; stable.
pub fn sort_by(table: &Table, keys: &[(&str, SortOrder)]) -> Result<Table> {
    let cols: Vec<(usize, SortOrder)> = keys
        .iter()
        .map(|(name, ord)| Ok((table.schema().index_of(name)?, *ord)))
        .collect::<Result<Vec<_>>>()?;

    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for &(c, ord) in &cols {
            let col = table.column(c);
            let cmp = col.value(a).total_cmp(&col.value(b));
            let cmp = match ord {
                SortOrder::Asc => cmp,
                SortOrder::Desc => cmp.reverse(),
            };
            if cmp != std::cmp::Ordering::Equal {
                return cmp;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(table.take(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn sample() -> Table {
        let schema =
            Schema::from_pairs(&[("k", DataType::Str), ("v", DataType::Int)]).unwrap();
        Table::new(
            schema,
            vec![
                Column::from_strs(&["b", "a", "b", "a"]),
                Column::from_ints(vec![2, 9, 1, 3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_key_asc() {
        let out = sort_by(&sample(), &[("v", SortOrder::Asc)]).unwrap();
        let vs: Vec<i64> = (0..4)
            .map(|r| out.value(r, "v").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vs, vec![1, 2, 3, 9]);
    }

    #[test]
    fn multi_key_mixed_order() {
        let out = sort_by(
            &sample(),
            &[("k", SortOrder::Asc), ("v", SortOrder::Desc)],
        )
        .unwrap();
        assert_eq!(out.row(0), vec![Value::str("a"), Value::Int(9)]);
        assert_eq!(out.row(1), vec![Value::str("a"), Value::Int(3)]);
        assert_eq!(out.row(2), vec![Value::str("b"), Value::Int(2)]);
        assert_eq!(out.row(3), vec![Value::str("b"), Value::Int(1)]);
    }

    #[test]
    fn unknown_key_errors() {
        assert!(sort_by(&sample(), &[("zz", SortOrder::Asc)]).is_err());
    }
}
