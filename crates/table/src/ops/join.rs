//! Key/foreign-key natural join (⋈).
//!
//! The paper only needs star-schema joins: the fact table carries a foreign
//! key into a reference table whose join column is a primary key. We build a
//! hash index on the reference side (unique keys enforced) and probe with
//! the left side, so the cost is O(|left| + |right|). Left rows with no
//! match are dropped (inner-join semantics), matching the relational ⋈.

use crate::error::{Result, TableError};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// left ⋈ right on the shared column `key`.
///
/// `right[key]` must be unique (primary key); duplicate keys are a
/// [`TableError::KeyViolation`]. The output schema is the left schema
/// followed by the right schema minus its key column.
pub fn natural_join(left: &Table, right: &Table, key: &str) -> Result<Table> {
    let left_key = left.column_by_name(key)?;
    let right_key = right.column_by_name(key)?;
    if left_key.dtype() != right_key.dtype() {
        return Err(TableError::TypeMismatch {
            context: format!("join key {key}"),
            expected: left_key.dtype().name(),
            found: right_key.dtype().name(),
        });
    }

    // Build: primary-key index over the right side.
    let mut index: HashMap<Value, usize> = HashMap::with_capacity(right.num_rows());
    for row in 0..right.num_rows() {
        let k = right_key.value(row);
        if k.is_null() {
            continue; // NULL keys never join
        }
        if index.insert(k, row).is_some() {
            return Err(TableError::KeyViolation(format!(
                "duplicate primary key in right table on column {key}"
            )));
        }
    }

    // Probe: record matching row pairs.
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    for row in 0..left.num_rows() {
        let k = left_key.value(row);
        if k.is_null() {
            continue;
        }
        if let Some(&r) = index.get(&k) {
            left_rows.push(row);
            right_rows.push(r);
        }
    }

    // Materialise: left columns, then right columns minus the key.
    let schema = left.schema().join(right.schema())?;
    let mut columns = Vec::with_capacity(schema.len());
    for c in left.columns() {
        columns.push(c.take(&left_rows));
    }
    for (field, c) in right.schema().fields().iter().zip(right.columns()) {
        if field.name != key && !left.schema().contains(&field.name) {
            columns.push(c.take(&right_rows));
        }
    }
    Table::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnBuilder};
    use crate::schema::Schema;
    use crate::value::DataType;

    fn orders() -> Table {
        let schema = Schema::from_pairs(&[
            ("oid", DataType::Int),
            ("item", DataType::Int),
            ("profit", DataType::Float),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![100, 101, 102, 103]),
                Column::from_ints(vec![1, 2, 1, 9]),
                Column::from_floats(vec![5.0, 6.0, 7.0, 8.0]),
            ],
        )
        .unwrap()
    }

    fn items() -> Table {
        let schema = Schema::from_pairs(&[
            ("item", DataType::Int),
            ("category", DataType::Str),
        ])
        .unwrap()
;
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_strs(&["laptop", "desktop", "tablet"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn joins_matching_rows() {
        let out = natural_join(&orders(), &items(), "item").unwrap();
        // item 9 has no match; items 1,2,1 match
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().names(), vec!["oid", "item", "profit", "category"]);
        assert_eq!(out.value(0, "category").unwrap(), Value::str("laptop"));
        assert_eq!(out.value(1, "category").unwrap(), Value::str("desktop"));
        assert_eq!(out.value(2, "category").unwrap(), Value::str("laptop"));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let schema = Schema::from_pairs(&[("item", DataType::Int)]).unwrap();
        let dup = Table::new(schema, vec![Column::from_ints(vec![1, 1])]).unwrap();
        let err = natural_join(&orders(), &dup, "item").unwrap_err();
        assert!(matches!(err, TableError::KeyViolation(_)));
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::from_pairs(&[("item", DataType::Int)]).unwrap();
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push_int(1).unwrap();
        b.push_null();
        let left = Table::new(schema, vec![b.finish()]).unwrap();
        let out = natural_join(&left, &items(), "item").unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn type_mismatch_on_key() {
        let schema = Schema::from_pairs(&[("item", DataType::Str)]).unwrap();
        let bad = Table::new(schema, vec![Column::from_strs(&["1"])]).unwrap();
        assert!(natural_join(&orders(), &bad, "item").is_err());
    }

    #[test]
    fn join_preserves_left_multiplicity() {
        // FK join must keep one output row per fact row, never more.
        let out = natural_join(&orders(), &items(), "item").unwrap();
        let matched_left = 3; // oid 100,101,102
        assert_eq!(out.num_rows(), matched_left);
    }
}
