//! Group-by aggregation (α).
//!
//! `α_{G, f(A)} F`: group `F` by the columns `G` and compute one or more
//! aggregate functions per group. With `G` empty, the whole table is one
//! group. Supports SUM, MIN, MAX, AVG, COUNT and COUNT(DISTINCT), the set
//! used by the paper's feature/cost/coverage queries. NULL inputs are
//! skipped (SQL semantics); a group with only NULLs yields NULL (except
//! COUNT variants, which yield 0).

use crate::column::ColumnBuilder;
use crate::error::{Result, TableError};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of a numeric column.
    Sum,
    /// Minimum (any orderable type).
    Min,
    /// Maximum (any orderable type).
    Max,
    /// Arithmetic mean of a numeric column.
    Avg,
    /// Count of non-NULL values.
    Count,
    /// Count of distinct non-NULL values.
    CountDistinct,
}

impl AggFunc {
    /// Name used in generated output columns and error messages.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
        }
    }

    /// Output type given the input column type.
    pub fn output_type(self, input: DataType) -> Result<DataType> {
        match self {
            AggFunc::Sum | AggFunc::Avg => match input {
                DataType::Int | DataType::Float => Ok(DataType::Float),
                DataType::Str => Err(TableError::UnsupportedAggregate {
                    func: self.name(),
                    dtype: input.name(),
                }),
            },
            AggFunc::Min | AggFunc::Max => Ok(input),
            AggFunc::Count | AggFunc::CountDistinct => Ok(DataType::Int),
        }
    }
}

/// One aggregate expression: `func(column) AS alias`.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// Function to apply.
    pub func: AggFunc,
    /// Input column name.
    pub column: String,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// `func(column)` with the default alias `func_column`.
    pub fn new(func: AggFunc, column: impl Into<String>) -> Self {
        let column = column.into();
        let alias = format!("{}_{}", func.name(), column);
        AggExpr {
            func,
            column,
            alias,
        }
    }

    /// Override the output column name.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = alias.into();
        self
    }
}

/// Accumulator for one (group, aggregate-expression) pair.
#[derive(Debug)]
enum Accumulator {
    Sum { total: f64, seen: bool },
    MinMax { best: Option<Value>, is_min: bool },
    Avg { total: f64, count: u64 },
    Count { count: u64 },
    CountDistinct { seen: HashSet<Value> },
}

impl Accumulator {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => Accumulator::Sum {
                total: 0.0,
                seen: false,
            },
            AggFunc::Min => Accumulator::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => Accumulator::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Avg => Accumulator::Avg {
                total: 0.0,
                count: 0,
            },
            AggFunc::Count => Accumulator::Count { count: 0 },
            AggFunc::CountDistinct => Accumulator::CountDistinct {
                seen: HashSet::new(),
            },
        }
    }

    fn update(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        match self {
            Accumulator::Sum { total, seen } => {
                // output_type() restricts Sum to numeric columns
                *total += v.as_float().expect("numeric input for sum");
                *seen = true;
            }
            Accumulator::MinMax { best, is_min } => {
                let better = match best {
                    None => true,
                    Some(b) => {
                        if *is_min {
                            v < *b
                        } else {
                            v > *b
                        }
                    }
                };
                if better {
                    *best = Some(v);
                }
            }
            Accumulator::Avg { total, count } => {
                *total += v.as_float().expect("numeric input for avg");
                *count += 1;
            }
            Accumulator::Count { count } => *count += 1,
            Accumulator::CountDistinct { seen } => {
                seen.insert(v);
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Sum { total, seen } => {
                if seen {
                    Value::Float(total)
                } else {
                    Value::Null
                }
            }
            Accumulator::MinMax { best, .. } => best.unwrap_or(Value::Null),
            Accumulator::Avg { total, count } => {
                if count > 0 {
                    Value::Float(total / count as f64)
                } else {
                    Value::Null
                }
            }
            Accumulator::Count { count } => Value::Int(count as i64),
            Accumulator::CountDistinct { seen } => Value::Int(seen.len() as i64),
        }
    }
}

/// α_{group_by, aggs}(table).
///
/// Output columns: the group-by columns (in the given order) followed by
/// one column per aggregate expression. Group order is first-appearance
/// order, making results deterministic for a given input order.
pub fn aggregate(table: &Table, group_by: &[&str], aggs: &[AggExpr]) -> Result<Table> {
    // Resolve inputs up front so errors surface before any work.
    let group_cols: Vec<usize> = group_by
        .iter()
        .map(|n| table.schema().index_of(n))
        .collect::<Result<Vec<_>>>()?;
    let agg_inputs: Vec<usize> = aggs
        .iter()
        .map(|a| table.schema().index_of(&a.column))
        .collect::<Result<Vec<_>>>()?;

    let mut out_fields: Vec<Field> = Vec::with_capacity(group_by.len() + aggs.len());
    for &gi in &group_cols {
        out_fields.push(table.schema().fields()[gi].clone());
    }
    for (a, &ci) in aggs.iter().zip(&agg_inputs) {
        let input_type = table.schema().fields()[ci].dtype;
        out_fields.push(Field::new(a.alias.clone(), a.func.output_type(input_type)?));
    }
    let out_schema = Schema::new(out_fields)?;

    // Group rows. Keys are value tuples; groups remember insertion order.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Vec<Accumulator>> = Vec::new();

    for row in 0..table.num_rows() {
        let key: Vec<Value> = group_cols
            .iter()
            .map(|&c| table.column(c).value(row))
            .collect();
        let gid = *groups.entry(key.clone()).or_insert_with(|| {
            group_keys.push(key);
            accs.push(aggs.iter().map(|a| Accumulator::new(a.func)).collect());
            accs.len() - 1
        });
        for (slot, &ci) in accs[gid].iter_mut().zip(&agg_inputs) {
            slot.update(table.column(ci).value(row));
        }
    }

    // Materialise output columns.
    let mut builders: Vec<ColumnBuilder> = out_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.dtype))
        .collect();
    for (key, group_accs) in group_keys.into_iter().zip(accs) {
        for (b, v) in builders.iter_mut().zip(
            key.into_iter()
                .chain(group_accs.into_iter().map(Accumulator::finish)),
        ) {
            b.push_value(v)?;
        }
    }
    let columns = builders.into_iter().map(ColumnBuilder::finish).collect();
    Table::new(out_schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnBuilder};
    use crate::schema::Schema;

    fn orders() -> Table {
        let schema = Schema::from_pairs(&[
            ("item", DataType::Int),
            ("st", DataType::Str),
            ("profit", DataType::Float),
            ("ad", DataType::Int),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 1, 2, 2, 2]),
                Column::from_strs(&["wi", "md", "wi", "wi", "md"]),
                Column::from_floats(vec![10.0, 20.0, 5.0, 7.0, 3.0]),
                Column::from_ints(vec![7, 7, 8, 9, 8]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn group_by_sum_avg() {
        let out = aggregate(
            &orders(),
            &["item"],
            &[
                AggExpr::new(AggFunc::Sum, "profit"),
                AggExpr::new(AggFunc::Avg, "profit"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "sum_profit").unwrap(), Value::Float(30.0));
        assert_eq!(out.value(1, "sum_profit").unwrap(), Value::Float(15.0));
        assert_eq!(out.value(1, "avg_profit").unwrap(), Value::Float(5.0));
    }

    #[test]
    fn multi_column_groups() {
        let out = aggregate(
            &orders(),
            &["item", "st"],
            &[AggExpr::new(AggFunc::Count, "profit")],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4); // (1,wi) (1,md) (2,wi) (2,md)
        assert_eq!(out.value(2, "count_profit").unwrap(), Value::Int(2));
    }

    #[test]
    fn global_aggregate_when_no_group_columns() {
        let out = aggregate(&orders(), &[], &[AggExpr::new(AggFunc::Max, "profit")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "max_profit").unwrap(), Value::Float(20.0));
    }

    #[test]
    fn count_distinct() {
        let out = aggregate(
            &orders(),
            &["item"],
            &[AggExpr::new(AggFunc::CountDistinct, "ad")],
        )
        .unwrap();
        assert_eq!(out.value(0, "count_distinct_ad").unwrap(), Value::Int(1));
        assert_eq!(out.value(1, "count_distinct_ad").unwrap(), Value::Int(2));
    }

    #[test]
    fn min_max_on_strings() {
        let out = aggregate(
            &orders(),
            &["item"],
            &[
                AggExpr::new(AggFunc::Min, "st"),
                AggExpr::new(AggFunc::Max, "st"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "min_st").unwrap(), Value::str("md"));
        assert_eq!(out.value(0, "max_st").unwrap(), Value::str("wi"));
    }

    #[test]
    fn sum_of_strings_rejected() {
        let err = aggregate(&orders(), &[], &[AggExpr::new(AggFunc::Sum, "st")]);
        assert!(matches!(
            err,
            Err(TableError::UnsupportedAggregate { .. })
        ));
    }

    #[test]
    fn nulls_skipped_and_all_null_group_is_null() {
        let schema =
            Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Float)]).unwrap();
        let mut xb = ColumnBuilder::new(DataType::Float);
        xb.push_float(1.0).unwrap();
        xb.push_null();
        xb.push_null();
        let t = Table::new(
            schema,
            vec![Column::from_ints(vec![1, 1, 2]), xb.finish()],
        )
        .unwrap();
        let out = aggregate(
            &t,
            &["g"],
            &[
                AggExpr::new(AggFunc::Sum, "x"),
                AggExpr::new(AggFunc::Count, "x"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "sum_x").unwrap(), Value::Float(1.0));
        assert_eq!(out.value(1, "sum_x").unwrap(), Value::Null);
        assert_eq!(out.value(1, "count_x").unwrap(), Value::Int(0));
    }

    #[test]
    fn alias_override() {
        let out = aggregate(
            &orders(),
            &[],
            &[AggExpr::new(AggFunc::Sum, "profit").with_alias("total")],
        )
        .unwrap();
        assert!(out.schema().contains("total"));
    }

    #[test]
    fn null_group_keys_form_one_group() {
        let schema =
            Schema::from_pairs(&[("g", DataType::Int), ("x", DataType::Int)]).unwrap();
        let mut gb = ColumnBuilder::new(DataType::Int);
        gb.push_null();
        gb.push_null();
        gb.push_int(1).unwrap();
        let t = Table::new(
            schema,
            vec![gb.finish(), Column::from_ints(vec![1, 2, 3])],
        )
        .unwrap();
        let out = aggregate(&t, &["g"], &[AggExpr::new(AggFunc::Sum, "x")]).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "sum_x").unwrap(), Value::Float(3.0));
    }
}
