//! Table schemas: ordered, uniquely named, typed fields.

use crate::error::{Result, TableError};
use crate::value::DataType;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One column's name and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered set of fields with O(1) name lookup.
///
/// Schemas are immutable and cheaply cloneable (`Arc` inside `Table`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut index = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if index.insert(f.name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields, index })
    }

    /// Convenience constructor from `(name, dtype)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Self> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect(),
        )
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// True if a column with `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }

    /// Concatenate two schemas, skipping right-side columns whose names
    /// collide (natural-join semantics: the shared key appears once).
    pub fn join(&self, right: &Schema) -> Result<Schema> {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            if !self.contains(&f.name) {
                fields.push(f.clone());
            }
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

/// Shared schema handle stored inside tables.
pub type SchemaRef = Arc<Schema>;

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn lookup() {
        let s = abc();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field("c").unwrap().dtype, DataType::Str);
        assert!(s.index_of("zz").is_err());
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicates_rejected() {
        let err = Schema::from_pairs(&[("x", DataType::Int), ("x", DataType::Int)]);
        assert!(matches!(err, Err(TableError::DuplicateColumn(_))));
    }

    #[test]
    fn select_reorders() {
        let s = abc().select(&["c", "a"]).unwrap();
        assert_eq!(s.names(), vec!["c", "a"]);
        assert!(abc().select(&["nope"]).is_err());
    }

    #[test]
    fn join_deduplicates_shared_keys() {
        let left = abc();
        let right =
            Schema::from_pairs(&[("a", DataType::Int), ("d", DataType::Float)]).unwrap();
        let joined = left.join(&right).unwrap();
        assert_eq!(joined.names(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn display() {
        assert_eq!(abc().to_string(), "(a: Int, b: Float, c: Str)");
    }
}
