//! The `Table`: an immutable batch of typed columns under a schema.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnBuilder};
use crate::error::{Result, TableError};
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable table: a schema plus equal-length columns.
///
/// Tables are the unit all relational operators consume and produce. They
/// are cheap to clone column-wise thanks to `Arc`-backed string payloads,
/// but operators always return freshly materialised tables — there is no
/// lazy plan layer, which keeps this substrate small and auditable.
#[derive(Debug, Clone)]
pub struct Table {
    schema: SchemaRef,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build from a schema and matching columns.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(TableError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.len() != rows {
                return Err(TableError::LengthMismatch {
                    expected: rows,
                    found: col.len(),
                });
            }
            if col.dtype() != field.dtype {
                return Err(TableError::TypeMismatch {
                    context: format!("column {}", field.name),
                    expected: field.dtype.name(),
                    found: col.dtype().name(),
                });
            }
        }
        Ok(Table {
            schema: Arc::new(schema),
            columns,
            rows,
        })
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype).finish())
            .collect();
        Table {
            schema: Arc::new(schema),
            columns,
            rows: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared schema handle.
    pub fn schema_ref(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Dynamically typed cell read.
    pub fn value(&self, row: usize, col: &str) -> Result<Value> {
        Ok(self.column_by_name(col)?.value(row))
    }

    /// One full row as values, in schema order.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Keep only rows whose bit is set.
    pub fn filter(&self, selection: &Bitmap) -> Table {
        let columns = self.columns.iter().map(|c| c.filter(selection)).collect();
        Table {
            schema: Arc::clone(&self.schema),
            columns,
            rows: selection.count_ones(),
        }
    }

    /// Gather rows by index, in order (duplicates allowed).
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Table {
            schema: Arc::clone(&self.schema),
            columns,
            rows: indices.len(),
        }
    }

    /// Project to the named columns (no dedup — see `ops::project` for π).
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.select(names)?;
        let columns = names
            .iter()
            .map(|n| self.column_by_name(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            schema: Arc::new(schema),
            columns,
            rows: self.rows,
        })
    }

    /// Vertically concatenate tables with identical schemas.
    pub fn concat(tables: &[&Table]) -> Result<Table> {
        let first = tables
            .first()
            .ok_or_else(|| TableError::Csv("concat of zero tables".into()))?;
        let schema = first.schema().clone();
        let mut builder = TableBuilder::new(schema.clone());
        for t in tables {
            if t.schema() != &schema {
                return Err(TableError::TypeMismatch {
                    context: "concat".into(),
                    expected: "identical schemas",
                    found: "divergent schema",
                });
            }
            for row in 0..t.num_rows() {
                builder.push_row(t.row(row))?;
            }
        }
        builder.finish()
    }
}

impl fmt::Display for Table {
    /// Render a small ASCII preview (at most 20 rows), for examples/tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        let shown = self.rows.min(20);
        for row in 0..shown {
            let cells: Vec<String> = self.row(row).iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if shown < self.rows {
            writeln!(f, "... ({} rows total)", self.rows)?;
        }
        Ok(())
    }
}

/// Row-at-a-time table builder, used by generators and operators.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// New builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype))
            .collect();
        TableBuilder { schema, builders }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// True if no rows pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one row of values in schema order.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.builders.len() {
            return Err(TableError::LengthMismatch {
                expected: self.builders.len(),
                found: row.len(),
            });
        }
        for (b, v) in self.builders.iter_mut().zip(row) {
            b.push_value(v)?;
        }
        Ok(())
    }

    /// Finish into a table.
    pub fn finish(self) -> Result<Table> {
        let columns: Vec<Column> = self.builders.into_iter().map(ColumnBuilder::finish).collect();
        Table::new(self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Table {
        let schema =
            Schema::from_pairs(&[("id", DataType::Int), ("profit", DataType::Float)]).unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_floats(vec![10.0, 20.0, 30.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_shapes() {
        let schema =
            Schema::from_pairs(&[("id", DataType::Int), ("profit", DataType::Float)]).unwrap();
        // wrong arity
        assert!(Table::new(schema.clone(), vec![Column::from_ints(vec![1])]).is_err());
        // wrong type
        assert!(Table::new(
            schema.clone(),
            vec![Column::from_floats(vec![1.0]), Column::from_floats(vec![1.0])],
        )
        .is_err());
        // ragged lengths
        assert!(Table::new(
            schema,
            vec![Column::from_ints(vec![1, 2]), Column::from_floats(vec![1.0])],
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.value(1, "profit").unwrap(), Value::Float(20.0));
        assert_eq!(t.row(0), vec![Value::Int(1), Value::Float(10.0)]);
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn filter_take_select() {
        let t = sample();
        let sel = Bitmap::from_bools(&[false, true, true]);
        let f = t.filter(&sel);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "id").unwrap(), Value::Int(2));

        let taken = t.take(&[2, 2, 0]);
        assert_eq!(taken.num_rows(), 3);
        assert_eq!(taken.value(0, "id").unwrap(), Value::Int(3));

        let proj = t.select(&["profit"]).unwrap();
        assert_eq!(proj.num_columns(), 1);
        assert_eq!(proj.num_rows(), 3);
    }

    #[test]
    fn builder_round_trip() {
        let schema =
            Schema::from_pairs(&[("a", DataType::Str), ("b", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::str("x"), Value::Int(1)]).unwrap();
        b.push_row(vec![Value::Null, Value::Int(2)]).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "a").unwrap(), Value::Null);
    }

    #[test]
    fn concat_appends_rows() {
        let t = sample();
        let c = Table::concat(&[&t, &t]).unwrap();
        assert_eq!(c.num_rows(), 6);
        assert_eq!(c.value(5, "id").unwrap(), Value::Int(3));
    }

    #[test]
    fn empty_table() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        let t = Table::empty(schema);
        assert!(t.is_empty());
        assert_eq!(t.num_columns(), 1);
    }

    #[test]
    fn display_preview() {
        let rendered = sample().to_string();
        assert!(rendered.contains("id: Int"));
        assert!(rendered.contains("1 | 10"));
    }
}
