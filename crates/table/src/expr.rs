//! Predicate expressions evaluated to selection bitmaps.
//!
//! Covers the selection forms the paper's queries need (σ_{ID=i, Z∈r}):
//! column-vs-literal comparisons, set membership, range (`Between`), and
//! boolean combinations. NULLs follow SQL three-valued logic collapsed to
//! "NULL never matches" (selection keeps only rows known true).

use crate::bitmap::Bitmap;
use crate::error::Result;
use crate::table::Table;
use crate::value::Value;

/// Comparison operators for [`Predicate::Compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A boolean predicate over one table's rows.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// `column <op> literal`.
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal right-hand side.
        value: Value,
    },
    /// `column IN (values)`.
    InSet {
        /// Column name.
        column: String,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// `low <= column <= high` (both inclusive), the interval-dimension
    /// selection `Time BETWEEN 1 AND t`.
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        low: Value,
        /// Inclusive upper bound.
        high: Value,
    },
    /// Conjunction; empty = TRUE.
    And(Vec<Predicate>),
    /// Disjunction; empty = FALSE.
    Or(Vec<Predicate>),
    /// Negation (of the "matches" bitmap; NULL rows stay excluded).
    Not(Box<Predicate>),
    /// Matches every row.
    True,
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `column <op> value`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// `column IN values`.
    pub fn in_set(column: impl Into<String>, values: Vec<Value>) -> Self {
        Predicate::InSet {
            column: column.into(),
            values,
        }
    }

    /// `low <= column <= high`.
    pub fn between(
        column: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Self {
        Predicate::Between {
            column: column.into(),
            low: low.into(),
            high: high.into(),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut preds) => {
                preds.push(other);
                Predicate::And(preds)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Evaluate to a selection bitmap over `table`.
    pub fn eval(&self, table: &Table) -> Result<Bitmap> {
        let n = table.num_rows();
        match self {
            Predicate::True => Ok(Bitmap::ones(n)),
            Predicate::Compare { column, op, value } => {
                let col = table.column_by_name(column)?;
                let mut bm = Bitmap::zeros(n);
                for i in 0..n {
                    let v = col.value(i);
                    if !v.is_null() && !value.is_null() && op.eval(v.total_cmp(value)) {
                        bm.set(i, true);
                    }
                }
                Ok(bm)
            }
            Predicate::InSet { column, values } => {
                let col = table.column_by_name(column)?;
                let set: std::collections::HashSet<&Value> =
                    values.iter().filter(|v| !v.is_null()).collect();
                let mut bm = Bitmap::zeros(n);
                for i in 0..n {
                    let v = col.value(i);
                    if !v.is_null() && set.contains(&v) {
                        bm.set(i, true);
                    }
                }
                Ok(bm)
            }
            Predicate::Between { column, low, high } => {
                let col = table.column_by_name(column)?;
                let mut bm = Bitmap::zeros(n);
                for i in 0..n {
                    let v = col.value(i);
                    if !v.is_null() && v >= *low && v <= *high {
                        bm.set(i, true);
                    }
                }
                Ok(bm)
            }
            Predicate::And(preds) => {
                let mut bm = Bitmap::ones(n);
                for p in preds {
                    bm.and_inplace(&p.eval(table)?);
                }
                Ok(bm)
            }
            Predicate::Or(preds) => {
                let mut bm = Bitmap::zeros(n);
                for p in preds {
                    bm.or_inplace(&p.eval(table)?);
                }
                Ok(bm)
            }
            Predicate::Not(p) => {
                let mut bm = p.eval(table)?;
                bm.not_inplace();
                Ok(bm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnBuilder};
    use crate::schema::Schema;
    use crate::value::DataType;

    fn sample() -> Table {
        let schema = Schema::from_pairs(&[
            ("t", DataType::Int),
            ("loc", DataType::Str),
            ("x", DataType::Float),
        ])
        .unwrap();
        let mut xb = ColumnBuilder::new(DataType::Float);
        for v in [Some(1.0), None, Some(3.0), Some(4.0)] {
            match v {
                Some(f) => xb.push_float(f).unwrap(),
                None => xb.push_null(),
            }
        }
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3, 4]),
                Column::from_strs(&["wi", "md", "wi", "ny"]),
                xb.finish(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn compare_and_between() {
        let t = sample();
        let sel = Predicate::cmp("t", CmpOp::Le, 2i64).eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        let sel = Predicate::between("t", 2i64, 3i64).eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn in_set_on_strings() {
        let t = sample();
        let sel = Predicate::in_set("loc", vec![Value::str("wi"), Value::str("ny")])
            .eval(&t)
            .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn nulls_never_match() {
        let t = sample();
        let sel = Predicate::cmp("x", CmpOp::Ge, 0.0).eval(&t).unwrap();
        // row 1 (NULL x) excluded even though "NULL >= 0" would be unknown
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
        let ne = Predicate::cmp("x", CmpOp::Ne, 1.0).eval(&t).unwrap();
        assert_eq!(ne.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn boolean_composition() {
        let t = sample();
        let p = Predicate::eq("loc", "wi").and(Predicate::cmp("t", CmpOp::Ge, 2i64));
        assert_eq!(p.eval(&t).unwrap().iter_ones().collect::<Vec<_>>(), vec![2]);

        let o = Predicate::Or(vec![Predicate::eq("t", 1i64), Predicate::eq("t", 4i64)]);
        assert_eq!(
            o.eval(&t).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![0, 3]
        );

        let n = Predicate::Not(Box::new(Predicate::eq("loc", "wi")));
        assert_eq!(
            n.eval(&t).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn true_and_empty_combinators() {
        let t = sample();
        assert_eq!(Predicate::True.eval(&t).unwrap().count_ones(), 4);
        assert_eq!(Predicate::And(vec![]).eval(&t).unwrap().count_ones(), 4);
        assert_eq!(Predicate::Or(vec![]).eval(&t).unwrap().count_ones(), 0);
    }

    #[test]
    fn unknown_column_errors() {
        let t = sample();
        assert!(Predicate::eq("nope", 1i64).eval(&t).is_err());
    }
}
