//! Error type shared by all table operations.

use std::fmt;

/// Errors raised by schema validation and relational operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// Two columns (or a column and a literal) have incompatible types.
    TypeMismatch {
        /// Context of the mismatch (operator or column name).
        context: String,
        /// Expected data type.
        expected: &'static str,
        /// Data type actually found.
        found: &'static str,
    },
    /// Column lengths within a table disagree.
    LengthMismatch {
        /// Length expected (from the first column or explicit row count).
        expected: usize,
        /// Length found.
        found: usize,
    },
    /// An aggregate was requested over a column that cannot support it.
    UnsupportedAggregate {
        /// Aggregate function name.
        func: &'static str,
        /// Column data type name.
        dtype: &'static str,
    },
    /// A duplicate column name was supplied to a schema.
    DuplicateColumn(String),
    /// Join keys did not satisfy the key/foreign-key contract.
    KeyViolation(String),
    /// A CSV file could not be parsed.
    Csv(String),
    /// An IO error, stringified to keep the error type `Clone + Eq`.
    Io(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            TableError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(f, "type mismatch in {context}: expected {expected}, found {found}"),
            TableError::LengthMismatch { expected, found } => {
                write!(f, "column length mismatch: expected {expected}, found {found}")
            }
            TableError::UnsupportedAggregate { func, dtype } => {
                write!(f, "aggregate {func} unsupported over {dtype}")
            }
            TableError::DuplicateColumn(name) => write!(f, "duplicate column name: {name}"),
            TableError::KeyViolation(msg) => write!(f, "key violation: {msg}"),
            TableError::Csv(msg) => write!(f, "csv error: {msg}"),
            TableError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(err: std::io::Error) -> Self {
        TableError::Io(err.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TableError>;
