//! Scalar values and data types.
//!
//! The bellwether workloads only need three scalar types: 64-bit integers
//! (ids, counts, dimension codes), 64-bit floats (profits, expenses) and
//! interned strings (categories, state names). `Value` is the dynamically
//! typed view used at operator boundaries (group keys, predicates, row
//! accessors); bulk storage stays in typed columns.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar, including SQL-style NULL.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares as the smallest value and equal only to itself
    /// for grouping purposes (group keys treat NULLs as identical, like
    /// SQL `GROUP BY`).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalised at construction boundaries; ordering
    /// uses `total_cmp`.
    Float(f64),
    /// Interned string; `Arc` keeps cloning cheap across group keys.
    Str(Arc<str>),
}

impl Value {
    /// Data type of the value, or `None` for NULL.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as integer if the value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// View as float; integers widen losslessly for numeric contexts.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// View as string slice if the value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Total order used for sorting and MIN/MAX: NULL < Int/Float (by
    /// numeric value, comparing across the two numeric types) < Str.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                // Hash consistently with total_cmp equality: an Int and a
                // Float that compare equal must hash equally, so floats with
                // integral values hash as ints.
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    1u8.hash(state);
                    (*v as i64).hash(state);
                } else {
                    2u8.hash(state);
                    v.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Float(1.5)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(3));
    }

    #[test]
    fn cross_numeric_equality_is_consistent_with_hash() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn strings_sort_after_numbers() {
        assert!(Value::str("abc") > Value::Int(i64::MAX));
    }

    #[test]
    fn nan_is_orderable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(nan > Value::Float(f64::INFINITY));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Float(4.5).as_int(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("wi").to_string(), "wi");
    }
}
