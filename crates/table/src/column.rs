//! Typed columnar storage.
//!
//! Each column stores its values in a dense typed vector plus an optional
//! validity bitmap (absent means "no NULLs"). String columns intern their
//! payload in `Arc<str>` so repeated categorical values share one buffer
//! after dictionary-style construction by the builders.

use crate::bitmap::Bitmap;
use crate::error::{Result, TableError};
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A typed column of values with an optional NULL mask.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int(ColumnData<i64>),
    /// 64-bit floats.
    Float(ColumnData<f64>),
    /// Interned strings.
    Str(ColumnData<Arc<str>>),
}

/// Typed payload + validity for one column.
#[derive(Debug, Clone)]
pub struct ColumnData<T> {
    /// Dense values; the slot content for NULL rows is unspecified filler.
    pub values: Vec<T>,
    /// Validity mask; `None` means all rows valid.
    pub validity: Option<Bitmap>,
}

impl<T> ColumnData<T> {
    fn new(values: Vec<T>, validity: Option<Bitmap>) -> Self {
        ColumnData { values, validity }
    }

    /// True if row `i` holds a non-NULL value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.get(i))
    }
}

impl Column {
    /// Column of non-null integers.
    pub fn from_ints(values: Vec<i64>) -> Self {
        Column::Int(ColumnData::new(values, None))
    }

    /// Column of non-null floats.
    pub fn from_floats(values: Vec<f64>) -> Self {
        Column::Float(ColumnData::new(values, None))
    }

    /// Column of non-null strings; equal strings share one allocation.
    pub fn from_strs<S: AsRef<str>>(values: &[S]) -> Self {
        let mut interner: HashMap<&str, Arc<str>> = HashMap::new();
        let data = values
            .iter()
            .map(|s| {
                let s = s.as_ref();
                interner
                    .entry(s)
                    .or_insert_with(|| Arc::from(s))
                    .clone()
            })
            .collect();
        Column::Str(ColumnData::new(data, None))
    }

    /// Column built from dynamically typed values; fails on mixed types.
    /// The column type is taken from the first non-NULL value; an all-NULL
    /// input defaults to `Float`.
    pub fn from_values(values: &[Value]) -> Result<Self> {
        let dtype = values
            .iter()
            .find_map(|v| v.dtype())
            .unwrap_or(DataType::Float);
        let mut builder = ColumnBuilder::new(dtype);
        for v in values {
            builder.push_value(v.clone())?;
        }
        Ok(builder.finish())
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(d) => d.values.len(),
            Column::Float(d) => d.values.len(),
            Column::Str(d) => d.values.len(),
        }
    }

    /// True if the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        let (len, validity) = match self {
            Column::Int(d) => (d.values.len(), d.validity.as_ref()),
            Column::Float(d) => (d.values.len(), d.validity.as_ref()),
            Column::Str(d) => (d.values.len(), d.validity.as_ref()),
        };
        validity.map_or(0, |v| len - v.count_ones())
    }

    /// Dynamically typed read of row `i`. Panics if out of range.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(d) => {
                if d.is_valid(i) {
                    Value::Int(d.values[i])
                } else {
                    Value::Null
                }
            }
            Column::Float(d) => {
                if d.is_valid(i) {
                    Value::Float(d.values[i])
                } else {
                    Value::Null
                }
            }
            Column::Str(d) => {
                if d.is_valid(i) {
                    Value::Str(d.values[i].clone())
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Borrow the integer payload, or error with `context` in the message.
    pub fn as_int(&self, context: &str) -> Result<&ColumnData<i64>> {
        match self {
            Column::Int(d) => Ok(d),
            other => Err(TableError::TypeMismatch {
                context: context.to_string(),
                expected: "Int",
                found: other.dtype().name(),
            }),
        }
    }

    /// Borrow the float payload, or error with `context` in the message.
    pub fn as_float(&self, context: &str) -> Result<&ColumnData<f64>> {
        match self {
            Column::Float(d) => Ok(d),
            other => Err(TableError::TypeMismatch {
                context: context.to_string(),
                expected: "Float",
                found: other.dtype().name(),
            }),
        }
    }

    /// Borrow the string payload, or error with `context` in the message.
    pub fn as_str(&self, context: &str) -> Result<&ColumnData<Arc<str>>> {
        match self {
            Column::Str(d) => Ok(d),
            other => Err(TableError::TypeMismatch {
                context: context.to_string(),
                expected: "Str",
                found: other.dtype().name(),
            }),
        }
    }

    /// Read row `i` as `f64`, widening integers; `None` for NULL.
    pub fn float_at(&self, i: usize) -> Option<f64> {
        match self {
            Column::Int(d) => d.is_valid(i).then(|| d.values[i] as f64),
            Column::Float(d) => d.is_valid(i).then(|| d.values[i]),
            Column::Str(_) => None,
        }
    }

    /// Materialise the subset of rows whose bit is set in `selection`.
    pub fn filter(&self, selection: &Bitmap) -> Column {
        assert_eq!(selection.len(), self.len(), "selection length mismatch");
        let idx: Vec<usize> = selection.iter_ones().collect();
        self.take(&idx)
    }

    /// Materialise the rows at `indices`, in order (gather).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone + Default>(d: &ColumnData<T>, indices: &[usize]) -> ColumnData<T> {
            let values: Vec<T> = indices.iter().map(|&i| d.values[i].clone()).collect();
            let validity = d.validity.as_ref().map(|v| {
                let mut out = Bitmap::zeros(indices.len());
                for (pos, &i) in indices.iter().enumerate() {
                    if v.get(i) {
                        out.set(pos, true);
                    }
                }
                out
            });
            ColumnData::new(values, validity)
        }
        match self {
            Column::Int(d) => Column::Int(gather(d, indices)),
            Column::Float(d) => Column::Float(gather(d, indices)),
            Column::Str(d) => Column::Str(gather(d, indices)),
        }
    }
}

/// Incremental builder for one column, accepting dynamically typed pushes.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    ints: Vec<i64>,
    floats: Vec<f64>,
    strs: Vec<Arc<str>>,
    interner: HashMap<Arc<str>, Arc<str>>,
    validity: Bitmap,
    has_nulls: bool,
}

impl ColumnBuilder {
    /// New builder producing a column of `dtype`.
    pub fn new(dtype: DataType) -> Self {
        ColumnBuilder {
            dtype,
            ints: Vec::new(),
            floats: Vec::new(),
            strs: Vec::new(),
            interner: HashMap::new(),
            validity: Bitmap::zeros(0),
            has_nulls: false,
        }
    }

    /// The target data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push a NULL.
    pub fn push_null(&mut self) {
        match self.dtype {
            DataType::Int => self.ints.push(0),
            DataType::Float => self.floats.push(0.0),
            DataType::Str => self.strs.push(Arc::from("")),
        }
        self.validity.push(false);
        self.has_nulls = true;
    }

    /// Push an integer; errors if the builder's type disagrees.
    pub fn push_int(&mut self, v: i64) -> Result<()> {
        match self.dtype {
            DataType::Int => {
                self.ints.push(v);
                self.validity.push(true);
                Ok(())
            }
            // Ints widen into float columns, matching Value::as_float.
            DataType::Float => {
                self.floats.push(v as f64);
                self.validity.push(true);
                Ok(())
            }
            DataType::Str => Err(TableError::TypeMismatch {
                context: "ColumnBuilder::push_int".into(),
                expected: "Str",
                found: "Int",
            }),
        }
    }

    /// Push a float; errors if the builder's type disagrees.
    pub fn push_float(&mut self, v: f64) -> Result<()> {
        match self.dtype {
            DataType::Float => {
                self.floats.push(v);
                self.validity.push(true);
                Ok(())
            }
            other => Err(TableError::TypeMismatch {
                context: "ColumnBuilder::push_float".into(),
                expected: other.name(),
                found: "Float",
            }),
        }
    }

    /// Push a string; errors if the builder's type disagrees.
    pub fn push_str(&mut self, v: impl Into<Arc<str>>) -> Result<()> {
        match self.dtype {
            DataType::Str => {
                let v: Arc<str> = v.into();
                let interned = self.interner.entry(v.clone()).or_insert(v).clone();
                self.strs.push(interned);
                self.validity.push(true);
                Ok(())
            }
            other => Err(TableError::TypeMismatch {
                context: "ColumnBuilder::push_str".into(),
                expected: other.name(),
                found: "Str",
            }),
        }
    }

    /// Push a dynamically typed value.
    pub fn push_value(&mut self, v: Value) -> Result<()> {
        match v {
            Value::Null => {
                self.push_null();
                Ok(())
            }
            Value::Int(i) => self.push_int(i),
            Value::Float(f) => self.push_float(f),
            Value::Str(s) => self.push_str(s),
        }
    }

    /// Finish into an immutable column.
    pub fn finish(self) -> Column {
        let validity = self.has_nulls.then_some(self.validity);
        match self.dtype {
            DataType::Int => Column::Int(ColumnData::new(self.ints, validity)),
            DataType::Float => Column::Float(ColumnData::new(self.floats, validity)),
            DataType::Str => Column::Str(ColumnData::new(self.strs, validity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let c = Column::from_ints(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(1), Value::Int(2));
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn builder_nulls() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push_float(1.5).unwrap();
        b.push_null();
        b.push_int(2).unwrap(); // widening
        let c = b.finish();
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::Float(1.5));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Float(2.0));
        assert_eq!(c.float_at(1), None);
    }

    #[test]
    fn string_interning_shares_buffers() {
        let c = Column::from_strs(&["wi", "md", "wi", "wi"]);
        if let Column::Str(d) = &c {
            assert!(Arc::ptr_eq(&d.values[0], &d.values[2]));
            assert!(Arc::ptr_eq(&d.values[0], &d.values[3]));
            assert!(!Arc::ptr_eq(&d.values[0], &d.values[1]));
        } else {
            panic!("expected Str column");
        }
    }

    #[test]
    fn type_errors_are_reported() {
        let mut b = ColumnBuilder::new(DataType::Int);
        let err = b.push_str("x").unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { .. }));
        let c = Column::from_floats(vec![1.0]);
        assert!(c.as_int("test").is_err());
        assert!(c.as_float("test").is_ok());
    }

    #[test]
    fn filter_and_take() {
        let c = Column::from_ints(vec![10, 20, 30, 40]);
        let sel = Bitmap::from_bools(&[true, false, false, true]);
        let f = c.filter(&sel);
        assert_eq!(f.len(), 2);
        assert_eq!(f.value(0), Value::Int(10));
        assert_eq!(f.value(1), Value::Int(40));
        let t = c.take(&[3, 0, 0]);
        assert_eq!(t.value(0), Value::Int(40));
        assert_eq!(t.value(2), Value::Int(10));
    }

    #[test]
    fn take_preserves_validity() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push_int(1).unwrap();
        b.push_null();
        b.push_int(3).unwrap();
        let c = b.finish();
        let t = c.take(&[1, 2]);
        assert_eq!(t.value(0), Value::Null);
        assert_eq!(t.value(1), Value::Int(3));
    }

    #[test]
    fn from_values_infers_type() {
        let c = Column::from_values(&[Value::Null, Value::str("a"), Value::str("b")]).unwrap();
        assert_eq!(c.dtype(), DataType::Str);
        assert_eq!(c.null_count(), 1);
        let err = Column::from_values(&[Value::Int(1), Value::str("a")]);
        assert!(err.is_err());
    }
}
