//! Compact validity / selection bitmaps.
//!
//! Used both as NULL masks inside columns and as selection vectors produced
//! by predicate evaluation, so filters can be composed without materialising
//! intermediate tables.

/// A fixed-length bitmap backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bm = Bitmap::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bm.set(i, true);
            }
        }
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if v {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Append a bit, growing the bitmap.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        let last = self.len - 1;
        self.set(last, v);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place AND with another bitmap of the same length.
    pub fn and_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place OR with another bitmap of the same length.
    pub fn or_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place NOT.
    pub fn not_inplace(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Clear bits past `len` in the last word so `count_ones` stays exact.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set-bit positions of a [`Bitmap`].
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(70);
        assert_eq!(z.count_ones(), 0);
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.get(69));
    }

    #[test]
    fn set_get_push() {
        let mut bm = Bitmap::zeros(3);
        bm.set(1, true);
        assert!(!bm.get(0) && bm.get(1) && !bm.get(2));
        bm.push(true);
        assert_eq!(bm.len(), 4);
        assert!(bm.get(3));
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        let mut and = a.clone();
        and.and_inplace(&b);
        assert_eq!(and, Bitmap::from_bools(&[true, false, false, false]));
        let mut or = a.clone();
        or.or_inplace(&b);
        assert_eq!(or, Bitmap::from_bools(&[true, true, true, false]));
        let mut not = a.clone();
        not.not_inplace();
        assert_eq!(not, Bitmap::from_bools(&[false, false, true, true]));
        assert_eq!(not.count_ones(), 2);
    }

    #[test]
    fn iter_ones_spans_words() {
        let mut bm = Bitmap::zeros(130);
        for i in [0usize, 63, 64, 127, 129] {
            bm.set(i, true);
        }
        let got: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(got, vec![0, 63, 64, 127, 129]);
    }

    #[test]
    fn not_respects_tail() {
        let mut bm = Bitmap::ones(65);
        bm.not_inplace();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::zeros(4).get(4);
    }
}
