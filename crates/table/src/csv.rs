//! Minimal CSV import/export so examples can inspect and exchange data.
//!
//! Values containing commas, quotes or newlines are quoted on write and
//! unquoted on read; NULL round-trips as the empty field.

use crate::error::{Result, TableError};
use crate::schema::Schema;
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};
use std::io::{BufRead, Write};

/// Write `table` as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> Result<()> {
    let header: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|n| escape(n))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for row in 0..table.num_rows() {
        let cells: Vec<String> = table
            .row(row)
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => escape(s),
                other => other.to_string(),
            })
            .collect();
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Read CSV with a header row into a table with the given schema.
/// The header must match the schema's column names exactly, in order.
pub fn read_csv<R: BufRead>(schema: Schema, input: R) -> Result<Table> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| TableError::Csv("missing header".into()))?
        .map_err(TableError::from)?;
    let names = parse_line(&header)?;
    let expected = schema.names();
    if names.len() != expected.len()
        || names.iter().zip(&expected).any(|(a, b)| a != *b)
    {
        return Err(TableError::Csv(format!(
            "header {names:?} does not match schema {expected:?}"
        )));
    }

    let mut builder = TableBuilder::new(schema.clone());
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(TableError::from)?;
        if line.is_empty() {
            continue;
        }
        let cells = parse_line(&line)?;
        if cells.len() != schema.len() {
            return Err(TableError::Csv(format!(
                "line {}: expected {} fields, got {}",
                lineno + 2,
                schema.len(),
                cells.len()
            )));
        }
        let row: Vec<Value> = cells
            .into_iter()
            .zip(schema.fields())
            .map(|(cell, field)| parse_cell(&cell, field.dtype, lineno + 2))
            .collect::<Result<Vec<_>>>()?;
        builder.push_row(row)?;
    }
    builder.finish()
}

fn parse_cell(cell: &str, dtype: DataType, lineno: usize) -> Result<Value> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    match dtype {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| TableError::Csv(format!("line {lineno}: bad int {cell:?}: {e}"))),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| TableError::Csv(format!("line {lineno}: bad float {cell:?}: {e}"))),
        DataType::Str => Ok(Value::from(cell)),
    }
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV line into unescaped cells.
fn parse_line(line: &str) -> Result<Vec<String>> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => cells.push(std::mem::take(&mut cell)),
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv(format!("unterminated quote in {line:?}")));
    }
    cells.push(cell);
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use std::io::Cursor;

    fn sample() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("profit", DataType::Float),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2]),
                Column::from_strs(&["plain", "with,comma \"q\""]),
                Column::from_floats(vec![1.5, -2.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(t.schema().clone(), Cursor::new(buf)).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.value(1, "name").unwrap(), Value::str("with,comma \"q\""));
        assert_eq!(back.value(1, "profit").unwrap(), Value::Float(-2.0));
    }

    #[test]
    fn null_round_trips_as_empty() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let csv = "x\n\n1\n"; // blank line skipped? No: blank line IS skipped
        let t = read_csv(schema.clone(), Cursor::new(csv)).unwrap();
        assert_eq!(t.num_rows(), 1); // empty lines skipped entirely
        let csv2 = "x\n1\n";
        let t2 = read_csv(schema, Cursor::new(csv2)).unwrap();
        assert_eq!(t2.value(0, "x").unwrap(), Value::Int(1));
    }

    #[test]
    fn header_mismatch_rejected() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        assert!(read_csv(schema, Cursor::new("y\n1\n")).is_err());
    }

    #[test]
    fn bad_values_rejected_with_line_numbers() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let err = read_csv(schema, Cursor::new("x\nnope\n")).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let schema = Schema::from_pairs(&[("x", DataType::Str)]).unwrap();
        assert!(read_csv(schema, Cursor::new("x\n\"abc\n")).is_err());
    }
}
