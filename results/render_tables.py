#!/usr/bin/env python3
"""Render results/*.json figure artifacts as Markdown tables.

Usage: python3 results/render_tables.py fig11b fig11c fig12a fig12b
"""
import json
import sys
from pathlib import Path


def render(fig_id: str) -> str:
    path = Path(__file__).parent / f"{fig_id}.json"
    fig = json.loads(path.read_text())
    header = [fig["x_label"]] + [s["name"] for s in fig["series"]]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    xs = [p[0] for p in fig["series"][0]["points"]]
    for i, x in enumerate(xs):
        row = [f"{x:g}"]
        for s in fig["series"]:
            y = s["points"][i][1]
            row.append("-" if y is None else f"{y:.3f}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


if __name__ == "__main__":
    for fig_id in sys.argv[1:]:
        print(f"### {fig_id}\n")
        print(render(fig_id))
        print()
