//! Property-based tests of the core invariants, spanning crates:
//!
//! * the CUBE pass agrees with direct filtered aggregation on every
//!   region, for arbitrary fact data;
//! * lattice rollup of counts agrees with the naive per-cell definition;
//! * iceberg pruning returns exactly the brute-force feasible set;
//! * the Theorem-1 statistic is merge-order invariant and subtraction
//!   inverts merge;
//! * region containment is a partial order consistent with coverage.

use bellwether::prelude::*;
use bellwether_cube::{
    aggregate_filtered, feasible_regions, feasible_regions_naive, rollup_lattice,
    rollup_naive, Constraints, Measure,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small two-dimensional space: 3 time points × a 2-level hierarchy.
fn space() -> RegionSpace {
    let mut loc = Hierarchy::new("L", "All");
    let a = loc.add_child(0, "A");
    loc.add_child(a, "a1");
    loc.add_child(a, "a2");
    let b = loc.add_child(0, "B");
    loc.add_child(b, "b1");
    RegionSpace::new(vec![
        Dimension::Interval {
            name: "T".into(),
            max_t: 3,
        },
        Dimension::Hierarchy(loc),
    ])
}

/// Leaf coordinates usable in the space above.
fn leaf_strategy() -> impl Strategy<Value = (u32, u32)> {
    (0u32..3, prop_oneof![Just(2u32), Just(3u32), Just(5u32)])
}

fn fact_strategy() -> impl Strategy<Value = Vec<(i64, (u32, u32), f64)>> {
    prop::collection::vec(
        ((0i64..6), leaf_strategy(), -100.0..100.0f64),
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cube_pass_matches_filtered_aggregation(rows in fact_strategy()) {
        let s = space();
        let input = CubeInput {
            item_ids: rows.iter().map(|(i, _, _)| *i).collect(),
            coords: rows.iter().flat_map(|(_, (t, l), _)| [*t, *l]).collect(),
            measures: vec![Measure::Numeric {
                name: "v".into(),
                func: AggFunc::Sum,
                values: rows.iter().map(|(_, _, v)| Some(*v)).collect(),
            }],
        };
        let cube = cube_pass(&s, &input);
        for region in s.all_regions() {
            let direct = aggregate_filtered(&input, 2, |cell| {
                s.contains(&region, &RegionId(cell.to_vec()))
            });
            // Same covered items.
            prop_assert_eq!(cube.coverage_count(&region), direct.len());
            for (item, vals) in &direct {
                let got = cube.features(&region, *item).unwrap();
                match (got[0], vals[0]) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn rollup_matches_naive_for_random_bases(
        entries in prop::collection::vec(((0u32..3), (0u32..3), 1u64..100), 1..20)
    ) {
        // item space: two flat hierarchies with 3 leaves each.
        let h1 = Hierarchy::flat("H1", "any1", &["x", "y", "z"]);
        let h2 = Hierarchy::flat("H2", "any2", &["p", "q", "r"]);
        let s = RegionSpace::new(vec![
            Dimension::Hierarchy(h1),
            Dimension::Hierarchy(h2),
        ]);
        let mut base: HashMap<RegionId, u64> = HashMap::new();
        for (l1, l2, v) in entries {
            // leaves are node ids 1..=3
            *base.entry(RegionId(vec![l1 + 1, l2 + 1])).or_insert(0) += v;
        }
        let fast = rollup_lattice(&s, base.clone(), |a, b| *a += *b);
        let slow = rollup_naive(&s, &base, |a, b| *a += *b);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn iceberg_pruning_is_exact(
        budget in 0.0..30.0f64,
        min_cov in 0.0..1.0f64,
        covs in prop::collection::vec(0usize..10, 12)
    ) {
        let s = space();
        let cost = UniformCellCost { rate: 1.0 };
        let all = s.all_regions();
        let coverage: HashMap<RegionId, usize> = all
            .iter()
            .cloned()
            .zip(covs.into_iter().cycle())
            .collect();
        // Make coverage monotone (supersets cover at least as much), as
        // real coverage always is.
        let coverage: HashMap<RegionId, usize> = all
            .iter()
            .map(|r| {
                let c = all
                    .iter()
                    .filter(|r2| s.contains(r, r2))
                    .map(|r2| coverage[r2])
                    .max()
                    .unwrap_or(0);
                (r.clone(), c)
            })
            .collect();
        let cons = Constraints {
            budget,
            min_coverage: min_cov,
            total_items: 10,
        };
        let mut pruned = feasible_regions(&s, &cost, &cons, &coverage);
        let mut naive = feasible_regions_naive(&s, &cost, &cons, &coverage);
        pruned.sort();
        naive.sort();
        prop_assert_eq!(pruned, naive);
    }

    #[test]
    fn suffstats_merge_is_order_invariant(
        rows in prop::collection::vec((0.1..10.0f64, -10.0..10.0f64), 6..40),
        splits in 1usize..5
    ) {
        let p = 2;
        let chunk = (rows.len() / (splits + 1)).max(1);
        let mut forward = RegSuffStats::new(p);
        let mut chunks: Vec<RegSuffStats> = Vec::new();
        for group in rows.chunks(chunk) {
            let mut s = RegSuffStats::new(p);
            for (x, y) in group {
                s.add(&[1.0, *x], *y, 1.0);
                forward.add(&[1.0, *x], *y, 1.0);
            }
            chunks.push(s);
        }
        // Merge in reverse order.
        let mut backward = RegSuffStats::new(p);
        for s in chunks.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(forward.n(), backward.n());
        match (forward.sse(), backward.sse()) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs())),
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
        }
    }

    #[test]
    fn suffstats_subtract_inverts_merge(
        rows in prop::collection::vec((0.1..10.0f64, -10.0..10.0f64), 8..40)
    ) {
        let p = 2;
        let half = rows.len() / 2;
        let mut a = RegSuffStats::new(p);
        for (x, y) in &rows[..half] {
            a.add(&[1.0, *x], *y, 1.0);
        }
        let mut b = RegSuffStats::new(p);
        for (x, y) in &rows[half..] {
            b.add(&[1.0, *x], *y, 1.0);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        merged.subtract(&b);
        prop_assert_eq!(merged.n(), a.n());
        if let (Some(x), Some(y)) = (merged.sse(), a.sse()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn containment_is_a_partial_order(t1 in 0u32..3, l1 in 0u32..6, t2 in 0u32..3, l2 in 0u32..6) {
        let s = space();
        let a = RegionId(vec![t1, l1]);
        let b = RegionId(vec![t2, l2]);
        // reflexive
        prop_assert!(s.contains(&a, &a));
        // antisymmetric
        if s.contains(&a, &b) && s.contains(&b, &a) {
            prop_assert_eq!(&a, &b);
        }
        // finest-cell counts are monotone
        if s.contains(&a, &b) {
            prop_assert!(s.finest_cell_count(&a) >= s.finest_cell_count(&b));
        }
    }
}
