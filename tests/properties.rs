//! Property-based tests of the core invariants, spanning crates:
//!
//! * the CUBE pass agrees with direct filtered aggregation on every
//!   region, for arbitrary fact data;
//! * the parallel CUBE kernel is bit-identical to the sequential one
//!   for every tested thread count, space shape and measure mix;
//! * lattice rollup of counts agrees with the naive per-cell definition;
//! * iceberg pruning returns exactly the brute-force feasible set;
//! * the Theorem-1 statistic is merge-order invariant and subtraction
//!   inverts merge;
//! * region containment is a partial order consistent with coverage.

use bellwether::prelude::*;
use bellwether_cube::{
    aggregate_filtered, cube_pass_with, feasible_regions, feasible_regions_naive,
    rollup_lattice, rollup_naive, Constraints, CubeResult, Measure, Parallelism,
};
use bellwether_prop::{check, Rng};
use std::collections::HashMap;

/// A small two-dimensional space: 3 time points × a 2-level hierarchy.
fn space() -> RegionSpace {
    let mut loc = Hierarchy::new("L", "All");
    let a = loc.add_child(0, "A");
    loc.add_child(a, "a1");
    loc.add_child(a, "a2");
    let b = loc.add_child(0, "B");
    loc.add_child(b, "b1");
    RegionSpace::new(vec![
        Dimension::Interval {
            name: "T".into(),
            max_t: 3,
        },
        Dimension::Hierarchy(loc),
    ])
}

/// Leaf coordinates usable in the space above: a time point and a
/// hierarchy leaf (node ids 2, 3 and 5).
fn leaf(rng: &mut Rng) -> (u32, u32) {
    (rng.u32_in(0, 3), *rng.choice(&[2u32, 3, 5]))
}

fn facts(rng: &mut Rng) -> Vec<(i64, (u32, u32), f64)> {
    rng.vec_of(1, 120, |r| {
        (r.i64_in(0, 6), leaf(r), r.f64_in(-100.0, 100.0))
    })
}

#[test]
fn cube_pass_matches_filtered_aggregation() {
    check("cube_pass_matches_filtered_aggregation", 64, |rng| {
        let rows = facts(rng);
        let s = space();
        let input = CubeInput {
            item_ids: rows.iter().map(|(i, _, _)| *i).collect(),
            coords: rows.iter().flat_map(|(_, (t, l), _)| [*t, *l]).collect(),
            measures: vec![Measure::Numeric {
                name: "v".into(),
                func: AggFunc::Sum,
                values: rows.iter().map(|(_, _, v)| Some(*v)).collect(),
            }],
        };
        let cube = cube_pass(&s, &input);
        for region in s.all_regions() {
            let direct = aggregate_filtered(&input, 2, |cell| {
                s.contains(&region, &RegionId(cell.to_vec()))
            });
            // Same covered items.
            assert_eq!(cube.coverage_count(&region), direct.len());
            for (item, vals) in &direct {
                let got = cube.features(&region, *item).unwrap();
                match (got[0], vals[0]) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
    });
}

/// A random region space: 1–3 dimensions, each an interval or a (flat or
/// two-level) hierarchy. Returns the space plus, per dimension, the
/// fact-level coordinates rows may use.
fn random_space(rng: &mut Rng) -> (RegionSpace, Vec<Vec<u32>>) {
    let arity = rng.usize_in(1, 4);
    let mut dims = Vec::new();
    let mut leaf_pools = Vec::new();
    for d in 0..arity {
        if rng.flip(0.4) {
            let max_t = rng.u32_in(2, 6);
            dims.push(Dimension::Interval {
                name: format!("T{d}"),
                max_t,
            });
            leaf_pools.push((0..max_t).collect());
        } else {
            let mut h = Hierarchy::new(format!("H{d}"), "All");
            for c in 0..rng.u32_in(2, 5) {
                let cid = h.add_child(0, format!("c{c}"));
                // Sometimes grow a second level under this child.
                if rng.flip(0.5) {
                    for g in 0..rng.u32_in(1, 4) {
                        h.add_child(cid, format!("c{c}g{g}"));
                    }
                }
            }
            let leaves = h.leaves();
            dims.push(Dimension::Hierarchy(h));
            leaf_pools.push(leaves);
        }
    }
    (RegionSpace::new(dims), leaf_pools)
}

/// A random measure over `n` fact rows: numeric (with NULLs) or
/// distinct-keyed (with NULL keys).
fn random_measure(rng: &mut Rng, idx: usize, n: usize) -> Measure {
    if rng.flip(0.6) {
        let func = *rng.choice(&[
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::Count,
        ]);
        Measure::Numeric {
            name: format!("m{idx}"),
            func,
            values: (0..n)
                .map(|_| {
                    if rng.flip(0.15) {
                        None
                    } else {
                        Some(rng.f64_in(-50.0, 50.0))
                    }
                })
                .collect(),
        }
    } else {
        let func = *rng.choice(&[
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::CountDistinct,
        ]);
        Measure::DistinctKeyed {
            name: format!("m{idx}"),
            func,
            keys: (0..n)
                .map(|_| {
                    if rng.flip(0.15) {
                        None
                    } else {
                        Some(rng.i64_in(0, 12))
                    }
                })
                .collect(),
            values: (0..n).map(|_| rng.f64_in(-20.0, 20.0)).collect(),
        }
    }
}

/// Bitwise equality of two cube results (float payloads compared via
/// `to_bits`, so "close" is not good enough).
fn assert_bit_identical(a: &CubeResult, b: &CubeResult) {
    assert_eq!(a.measure_names, b.measure_names);
    assert_eq!(a.regions.len(), b.regions.len());
    for (region, items) in &a.regions {
        let other = b.regions.get(region).expect("region missing");
        assert_eq!(items.len(), other.len(), "item count differs in {region:?}");
        for (item, vals) in items {
            let ovals = other.get(item).expect("item missing");
            assert_eq!(vals.len(), ovals.len());
            for (x, y) in vals.iter().zip(ovals) {
                assert_eq!(
                    x.map(f64::to_bits),
                    y.map(f64::to_bits),
                    "value bits differ for item {item} in {region:?}"
                );
            }
        }
    }
}

#[test]
fn parallel_cube_pass_is_bit_identical_to_sequential() {
    check("parallel_cube_pass_is_bit_identical", 12, |rng| {
        let (s, leaf_pools) = random_space(rng);
        // Up to ~10k rows: most cases span several 4096-row chunks, so
        // the scan sharding genuinely engages for higher thread counts.
        let n = rng.usize_in(1, 10_000);
        let item_ids: Vec<i64> = (0..n).map(|_| rng.i64_in(0, 8)).collect();
        let coords: Vec<u32> = (0..n)
            .flat_map(|_| {
                leaf_pools
                    .iter()
                    .map(|pool| *rng.choice(pool))
                    .collect::<Vec<_>>()
            })
            .collect();
        let measures = (0..rng.usize_in(1, 4))
            .map(|i| random_measure(rng, i, n))
            .collect();
        let input = CubeInput {
            item_ids,
            coords,
            measures,
        };
        let seq = cube_pass_with(&s, &input, Parallelism::sequential(), None);
        for threads in 2..=8 {
            let par = cube_pass_with(&s, &input, Parallelism::fixed(threads), None);
            assert_bit_identical(&seq, &par);
        }
    });
}

#[test]
fn rollup_matches_naive_for_random_bases() {
    check("rollup_matches_naive_for_random_bases", 64, |rng| {
        let entries = rng.vec_of(1, 20, |r| {
            (r.u32_in(0, 3), r.u32_in(0, 3), r.next_u64() % 99 + 1)
        });
        // item space: two flat hierarchies with 3 leaves each.
        let h1 = Hierarchy::flat("H1", "any1", &["x", "y", "z"]);
        let h2 = Hierarchy::flat("H2", "any2", &["p", "q", "r"]);
        let s = RegionSpace::new(vec![
            Dimension::Hierarchy(h1),
            Dimension::Hierarchy(h2),
        ]);
        let mut base: HashMap<RegionId, u64> = HashMap::new();
        for (l1, l2, v) in entries {
            // leaves are node ids 1..=3
            *base.entry(RegionId(vec![l1 + 1, l2 + 1])).or_insert(0) += v;
        }
        let fast = rollup_lattice(&s, base.clone(), |a, b| *a += *b);
        let slow = rollup_naive(&s, &base, |a, b| *a += *b);
        assert_eq!(fast, slow);
    });
}

#[test]
fn iceberg_pruning_is_exact() {
    check("iceberg_pruning_is_exact", 64, |rng| {
        let budget = rng.f64_in(0.0, 30.0);
        let min_cov = rng.f64();
        let covs: Vec<usize> = (0..12).map(|_| rng.below(10)).collect();
        let s = space();
        let cost = UniformCellCost { rate: 1.0 };
        let all = s.all_regions();
        let coverage: HashMap<RegionId, usize> = all
            .iter()
            .cloned()
            .zip(covs.into_iter().cycle())
            .collect();
        // Make coverage monotone (supersets cover at least as much), as
        // real coverage always is.
        let coverage: HashMap<RegionId, usize> = all
            .iter()
            .map(|r| {
                let c = all
                    .iter()
                    .filter(|r2| s.contains(r, r2))
                    .map(|r2| coverage[r2])
                    .max()
                    .unwrap_or(0);
                (r.clone(), c)
            })
            .collect();
        let cons = Constraints {
            budget,
            min_coverage: min_cov,
            total_items: 10,
        };
        let mut pruned = feasible_regions(&s, &cost, &cons, &coverage);
        let mut naive = feasible_regions_naive(&s, &cost, &cons, &coverage);
        pruned.sort();
        naive.sort();
        assert_eq!(pruned, naive);
    });
}

#[test]
fn suffstats_merge_is_order_invariant() {
    check("suffstats_merge_is_order_invariant", 64, |rng| {
        let rows = rng.vec_of(6, 40, |r| (r.f64_in(0.1, 10.0), r.f64_in(-10.0, 10.0)));
        let splits = rng.usize_in(1, 5);
        let p = 2;
        let chunk = (rows.len() / (splits + 1)).max(1);
        let mut forward = RegSuffStats::new(p);
        let mut chunks: Vec<RegSuffStats> = Vec::new();
        for group in rows.chunks(chunk) {
            let mut s = RegSuffStats::new(p);
            for (x, y) in group {
                s.add(&[1.0, *x], *y, 1.0);
                forward.add(&[1.0, *x], *y, 1.0);
            }
            chunks.push(s);
        }
        // Merge in reverse order.
        let mut backward = RegSuffStats::new(p);
        for s in chunks.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward.n(), backward.n());
        match (forward.sse(), backward.sse()) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6 * (1.0 + a.abs())),
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
    });
}

#[test]
fn suffstats_subtract_inverts_merge() {
    check("suffstats_subtract_inverts_merge", 64, |rng| {
        let rows = rng.vec_of(8, 40, |r| (r.f64_in(0.1, 10.0), r.f64_in(-10.0, 10.0)));
        let p = 2;
        let half = rows.len() / 2;
        let mut a = RegSuffStats::new(p);
        for (x, y) in &rows[..half] {
            a.add(&[1.0, *x], *y, 1.0);
        }
        let mut b = RegSuffStats::new(p);
        for (x, y) in &rows[half..] {
            b.add(&[1.0, *x], *y, 1.0);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        merged.subtract(&b);
        assert_eq!(merged.n(), a.n());
        if let (Some(x), Some(y)) = (merged.sse(), a.sse()) {
            assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    });
}

#[test]
fn containment_is_a_partial_order() {
    check("containment_is_a_partial_order", 128, |rng| {
        let s = space();
        let a = RegionId(vec![rng.u32_in(0, 3), rng.u32_in(0, 6)]);
        let b = RegionId(vec![rng.u32_in(0, 3), rng.u32_in(0, 6)]);
        // reflexive
        assert!(s.contains(&a, &a));
        // antisymmetric
        if s.contains(&a, &b) && s.contains(&b, &a) {
            assert_eq!(&a, &b);
        }
        // finest-cell counts are monotone
        if s.contains(&a, &b) {
            assert!(s.finest_cell_count(&a) >= s.finest_cell_count(&b));
        }
    });
}

/// Canonical, deterministic rendering of a bellwether tree.
/// `SplitCriterion::Categorical` holds a HashMap whose Debug order is
/// not deterministic, so each node renders sorted criterion pairs plus
/// everything else verbatim.
fn canon_tree(tree: &BellwetherTree) -> Vec<String> {
    tree.nodes
        .iter()
        .map(|n| {
            let split = n.split.as_ref().map(|(c, children)| match c {
                SplitCriterion::Categorical { attr, code_children } => {
                    let mut pairs: Vec<_> =
                        code_children.iter().map(|(k, v)| (*k, *v)).collect();
                    pairs.sort_unstable();
                    format!("cat attr={attr} {pairs:?} -> {children:?}")
                }
                SplitCriterion::Numeric { attr, threshold } => {
                    format!("num attr={attr} t={threshold:?} -> {children:?}")
                }
            });
            format!(
                "d{} rows{:?} info{:?} split{:?}",
                n.depth, n.item_rows, n.info, split
            )
        })
        .collect()
}

/// Canonical rendering of a bellwether cube (cell HashMap order is not
/// deterministic — cells are keyed and sorted by subset).
fn canon_cube(cube: &BellwetherCube) -> Vec<(RegionId, String)> {
    let mut v: Vec<_> = cube
        .cells
        .iter()
        .map(|(k, c)| (k.clone(), format!("{c:?}")))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Enabling a live metrics recorder must not change a single bit of any
/// search, tree or cube result — the observability layer only watches.
#[test]
fn recorder_does_not_change_results() {
    check("recorder_does_not_change_results", 12, |rng| {
        // Random single-dimension region space data: All/{ra, rb, rc}.
        let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L",
            "All",
            &["ra", "rb", "rc"],
        ))]);
        let n_items = rng.usize_in(8, 24) as i64;
        let groups: Vec<&str> = (0..n_items)
            .map(|_| *rng.choice(&["ga", "gb"]))
            .collect();
        let mut blocks = Vec::new();
        for region in 0u32..4 {
            let mut block = RegionBlock::new(vec![region], 2);
            for id in 0..n_items {
                if rng.flip(0.85) {
                    block.push(id, &[1.0, rng.f64_in(-10.0, 10.0)], rng.f64_in(-50.0, 50.0));
                }
            }
            blocks.push(block);
        }
        let source = MemorySource::new(blocks);
        let items = ItemTable::from_table(
            &Table::new(
                Schema::from_pairs(&[("id", DataType::Int), ("g", DataType::Str)]).unwrap(),
                vec![
                    Column::from_ints((0..n_items).collect()),
                    Column::from_strs(&groups),
                ],
            )
            .unwrap(),
            "id",
            &[],
            &["g"],
        )
        .unwrap();
        let item_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "G",
            "Any",
            &["ga", "gb"],
        ))]);
        let item_coords: HashMap<i64, Vec<u32>> = (0..n_items)
            .map(|id| (id, vec![if groups[id as usize] == "ga" { 1 } else { 2 }]))
            .collect();

        let base = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(3)
            .error_measure(ErrorMeasure::TrainingSet);
        let off = base.clone().build().unwrap();
        let reg = Registry::shared();
        let on = base.recorder(reg.clone()).build().unwrap();

        let cost = UniformCellCost { rate: 1.0 };
        let tree_cfg = TreeConfig {
            min_node_items: 4,
            ..TreeConfig::default()
        };
        let cube_cfg = CubeConfig { min_subset_size: 3 };

        // Basic search.
        let s_off =
            basic_search(&source, &region_space, &cost, &off, n_items as usize).unwrap();
        let s_on =
            basic_search(&source, &region_space, &cost, &on, n_items as usize).unwrap();
        assert_eq!(format!("{s_off:?}"), format!("{s_on:?}"), "basic search diverged");

        // RainForest tree (canonicalized — see `canon_tree`).
        let t_off =
            build_rainforest(&source, &region_space, &items, None, &off, &tree_cfg).unwrap();
        let t_on =
            build_rainforest(&source, &region_space, &items, None, &on, &tree_cfg).unwrap();
        assert_eq!(canon_tree(&t_off), canon_tree(&t_on), "rainforest tree diverged");

        // Optimized cube (canonicalized — see `canon_cube`).
        let c_off = build_optimized_cube(
            &source,
            &region_space,
            &item_space,
            &item_coords,
            &off,
            &cube_cfg,
        )
        .unwrap();
        let c_on = build_optimized_cube(
            &source,
            &region_space,
            &item_space,
            &item_coords,
            &on,
            &cube_cfg,
        )
        .unwrap();
        assert_eq!(canon_cube(&c_off), canon_cube(&c_on), "optimized cube diverged");

        // The recorder really was live: the traced runs left counters.
        let snap = reg.snapshot();
        assert!(snap.counter("search/regions_evaluated").is_some());
        assert!(snap.counter("tree/nodes").is_some());
    });
}

/// Lemma 1 / Theorem 1 in action: the scan engine's thread count and
/// the decoded-block cache must not change a single bit of any
/// builder's output. Every builder runs at threads ∈ {1, 2, 4, 7}
/// (with `min_chunk` 1, so small fixtures really shard) × cache
/// {off, generous, eviction-churning} and must reproduce the
/// sequential, uncached result exactly.
#[test]
fn thread_count_and_cache_do_not_change_results() {
    check("thread_count_and_cache_do_not_change_results", 6, |rng| {
        // Random blocks over a 7-leaf flat hierarchy (8 regions, so a
        // 7-thread scan gets more than one non-empty chunk).
        let leaves = ["ra", "rb", "rc", "rd", "re", "rf", "rg"];
        let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L", "All", &leaves,
        ))]);
        let n_items = rng.usize_in(10, 24) as i64;
        let groups: Vec<&str> = (0..n_items)
            .map(|_| *rng.choice(&["ga", "gb"]))
            .collect();
        let mut blocks = Vec::new();
        for region in 0u32..8 {
            let mut block = RegionBlock::new(vec![region], 2);
            for id in 0..n_items {
                if rng.flip(0.8) {
                    block.push(id, &[1.0, rng.f64_in(-10.0, 10.0)], rng.f64_in(-50.0, 50.0));
                }
            }
            blocks.push(block);
        }
        let block_bytes: usize = blocks.iter().map(|b| b.encoded_len()).sum();
        let items = ItemTable::from_table(
            &Table::new(
                Schema::from_pairs(&[("id", DataType::Int), ("g", DataType::Str)]).unwrap(),
                vec![
                    Column::from_ints((0..n_items).collect()),
                    Column::from_strs(&groups),
                ],
            )
            .unwrap(),
            "id",
            &[],
            &["g"],
        )
        .unwrap();
        let item_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "G",
            "Any",
            &["ga", "gb"],
        ))]);
        let item_coords: HashMap<i64, Vec<u32>> = (0..n_items)
            .map(|id| (id, vec![if groups[id as usize] == "ga" { 1 } else { 2 }]))
            .collect();

        let config_for = |par: Parallelism| {
            BellwetherConfig::builder(1e9)
                .min_coverage(0.0)
                .min_examples(3)
                .error_measure(ErrorMeasure::TrainingSet)
                .parallelism(par)
                .build()
                .unwrap()
        };
        let cost = UniformCellCost { rate: 1.0 };
        let tree_cfg = TreeConfig {
            min_node_items: 4,
            ..TreeConfig::default()
        };
        let cube_cfg = CubeConfig { min_subset_size: 3 };

        // One run of every builder against a given source and config,
        // rendered canonically so HashMap iteration order cannot leak in.
        let run_all = |source: &dyn TrainingSource, cfg: &BellwetherConfig| -> Vec<String> {
            let search =
                basic_search(source, &region_space, &cost, cfg, n_items as usize).unwrap();
            let rf =
                build_rainforest(source, &region_space, &items, None, cfg, &tree_cfg).unwrap();
            let naive_tree =
                build_naive_tree(source, &region_space, &items, None, cfg, &tree_cfg).unwrap();
            let mut out = vec![
                format!("{search:?}"),
                format!("{:?}", canon_tree(&rf)),
                format!("{:?}", canon_tree(&naive_tree)),
            ];
            for build in [build_naive_cube, build_single_scan_cube, build_optimized_cube] {
                let cube = build(
                    source,
                    &region_space,
                    &item_space,
                    &item_coords,
                    cfg,
                    &cube_cfg,
                )
                .unwrap();
                out.push(format!("{:?}", canon_cube(&cube)));
            }
            out
        };

        let baseline = run_all(
            &MemorySource::new(blocks.clone()),
            &config_for(Parallelism::sequential()),
        );

        for threads in [1usize, 2, 4, 7] {
            let cfg = config_for(Parallelism::fixed(threads).with_min_chunk(1));
            // Cache off.
            let plain = MemorySource::new(blocks.clone());
            assert_eq!(
                run_all(&plain, &cfg),
                baseline,
                "threads={threads} uncached diverged"
            );
            // Generous cache: everything fits, repeat scans all hit.
            let roomy = CachedSource::new(MemorySource::new(blocks.clone()), block_bytes);
            assert_eq!(
                run_all(&roomy, &cfg),
                baseline,
                "threads={threads} cached diverged"
            );
            let snap = roomy.snapshot();
            assert!(
                snap.cache_hits() > 0,
                "multi-scan builders should hit a roomy cache"
            );
            // Tight cache (two regions' worth): constant eviction churn
            // must not change results either.
            let tight = CachedSource::new(
                MemorySource::new(blocks.clone()),
                blocks.iter().map(|b| b.encoded_len()).max().unwrap() * 2,
            );
            assert_eq!(
                run_all(&tight, &cfg),
                baseline,
                "threads={threads} tight-cache diverged"
            );
            assert!(tight.snapshot().cache_evictions() > 0, "tight cache should evict");
        }
    });
}

/// The batched suffstat kernels pin a canonical summation order that is
/// a function of `n` alone: four lanes, example `r` in lane `r mod 4`,
/// lanes combined `(s0 + s1) + (s2 + s3)`. This test drives the full
/// scan + algebraic-CV pipeline over blocks whose row counts cover every
/// `n mod 4` tail, across thread counts, and demands bit-identical
/// search output (`f64`'s `Debug` repr round-trips bits, so string
/// equality is bit equality).
#[test]
fn scan_suffstats_bit_identical_across_threads_and_tails() {
    check("scan_suffstats_threads_tails", 8, |rng| {
        let leaves = ["ra", "rb", "rc", "rd", "re", "rf", "rg"];
        let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L", "All", &leaves,
        ))]);
        // Region r gets 4k + (r mod 4) rows: every dot4 tail length
        // occurs in every generated case, in leaf regions and in the
        // unions the rollup regions see.
        let mut blocks = Vec::new();
        let mut n_items = 0i64;
        for region in 0u32..8 {
            let n_rows = 4 * rng.usize_in(2, 6) + region as usize % 4;
            let mut block = RegionBlock::new(vec![region], 2);
            for _ in 0..n_rows {
                block.push(
                    n_items,
                    &[1.0, rng.f64_in(-10.0, 10.0)],
                    rng.f64_in(-50.0, 50.0),
                );
                n_items += 1;
            }
            blocks.push(block);
        }
        let cost = UniformCellCost { rate: 1.0 };
        let config_for = |threads: usize| {
            BellwetherConfig::builder(1e9)
                .min_coverage(0.0)
                .min_examples(6)
                .error_measure(ErrorMeasure::CrossValidation { folds: 3, seed: 7 })
                .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
                .build()
                .unwrap()
        };
        let run = |threads: usize| -> String {
            let source = MemorySource::new(blocks.clone());
            let search =
                basic_search(&source, &region_space, &cost, &config_for(threads), n_items as usize)
                    .unwrap();
            format!("{search:?}")
        };
        let baseline = run(1);
        for threads in [2usize, 4, 7] {
            assert_eq!(run(threads), baseline, "threads={threads} diverged");
        }
    });
}

/// Classic per-fold refit CV, used as the reference for the algebraic
/// engine: every fold trains on a fresh copy of its complement with the
/// Gram matrix rebuilt from raw rows. Mirrors the engine's fold
/// shuffling exactly.
fn refit_cv(data: &RegressionData, k: usize, seed: u64) -> Option<f64> {
    use bellwether::linreg::{fit_wls, fold_assignment};
    let n = data.n();
    if n < 2 {
        return None;
    }
    let assignment = fold_assignment(n, k, seed);
    let k = assignment.iter().copied().max().map_or(1, |m| m + 1);
    let mut fold_rmses = Vec::new();
    for fold in 0..k {
        let mut train = RegressionData::new(data.p());
        for (i, &f) in assignment.iter().enumerate() {
            if f != fold {
                train.push(&data.row(i), data.y(i));
            }
        }
        let Some(model) = fit_wls(&train) else { continue };
        let (mut sse, mut count) = (0.0, 0usize);
        for (i, &f) in assignment.iter().enumerate() {
            if f == fold {
                let r = data.y(i) - data.predict_at(i, model.coefficients());
                sse += r * r;
                count += 1;
            }
        }
        if count > 0 {
            fold_rmses.push((sse / count as f64).sqrt());
        }
    }
    if fold_rmses.is_empty() {
        None
    } else {
        Some(ErrorEstimate::from_folds(&fold_rmses).value)
    }
}

/// The algebraic CV engine (one statistics pass + k downdated solves,
/// through reusable per-worker scratch) agrees with the classic
/// per-fold refit within 1e-8 relative on well-conditioned data, for
/// every reported region, across folds {2, 5, 10} × threads {1, 2, 4}.
#[test]
fn algebraic_cv_matches_refit_cv() {
    check("algebraic_cv_matches_refit_cv", 6, |rng| {
        let leaves = ["ra", "rb", "rc", "rd", "re", "rf", "rg"];
        let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L", "All", &leaves,
        ))]);
        // Well-conditioned regions: wide x spread, modest noise, enough
        // rows that no fold complement is ever rank-deficient.
        let mut blocks = Vec::new();
        for region in 0u32..8 {
            let mut block = RegionBlock::new(vec![region], 2);
            let n = rng.usize_in(25, 60);
            let (a, b) = (rng.f64_in(-5.0, 5.0), rng.f64_in(-3.0, 3.0));
            for id in 0..n as i64 {
                let x = rng.f64_in(-10.0, 10.0);
                let y = a + b * x + rng.f64_in(-1.0, 1.0);
                block.push(id, &[1.0, x], y);
            }
            blocks.push(block);
        }
        let source = MemorySource::new(blocks.clone());
        let cost = UniformCellCost { rate: 1.0 };
        let n_items = 60;

        for folds in [2usize, 5, 10] {
            // Reference errors, region by region, via classic refits.
            let refit: Vec<Option<f64>> = blocks
                .iter()
                .map(|b| {
                    let mut data = RegressionData::new(2);
                    data.extend_from_cols(b.cols(), &b.targets);
                    refit_cv(&data, folds, 0xBE11)
                })
                .collect();

            for threads in [1usize, 2, 4] {
                let cfg = BellwetherConfig::builder(1e9)
                    .min_coverage(0.0)
                    .min_examples(5)
                    .error_measure(ErrorMeasure::CrossValidation {
                        folds,
                        seed: 0xBE11,
                    })
                    .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
                    .build()
                    .unwrap();
                let search =
                    basic_search(&source, &region_space, &cost, &cfg, n_items).unwrap();
                assert!(!search.reports.is_empty());
                for report in &search.reports {
                    let expect = refit[report.source_index]
                        .expect("refit fits wherever the engine fit");
                    let diff = (report.error.value - expect).abs();
                    assert!(
                        diff < 1e-8 * expect.abs() || diff < 1e-9,
                        "folds={folds} threads={threads} region {}: \
                         engine {} vs refit {expect}",
                        report.source_index,
                        report.error.value
                    );
                }
            }
        }
    });
}

/// Every builder answers "which region is the bellwether for all
/// items?" through the same algebraic error engine, so on one retail
/// workload they must all select the same region with the same error
/// (1e-8 relative): basic search, both trees and both row-level cubes
/// under cross-validation and under training-set error, plus the
/// training-set-only optimized cube and the item-fold CV cube (whose
/// fold *partition* differs by design, so only its selection is
/// compared).
#[test]
fn all_builders_agree_on_retail_bellwether() {
    let mut retail_cfg = RetailConfig::mail_order(40, 5);
    retail_cfg.months = 4;
    retail_cfg.converge_month = 3;
    retail_cfg.states = Some(vec!["MD", "WI", "CA", "NY"]);
    let data = generate_retail(&retail_cfg);
    let targets: HashMap<i64, f64> =
        global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input =
        build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let cube = cube_pass(&data.space, &cube_input);
    let regions = data.space.all_regions();
    let source = build_memory_source(&cube, &regions, &data.items, &targets);
    let n_items = data.items.len();
    let root_subset = RegionId(vec![0]); // the item space's "Any" root

    let tree_cfg = TreeConfig {
        max_depth: 1,
        min_node_items: 10,
        ..TreeConfig::default()
    };
    let cube_cfg = CubeConfig {
        min_subset_size: 5,
    };

    for measure in [ErrorMeasure::cv10(), ErrorMeasure::TrainingSet] {
        let problem = BellwetherConfig::builder(f64::INFINITY)
            .min_coverage(0.0)
            .min_examples(10)
            .error_measure(measure)
            .build()
            .unwrap();

        // (builder name, selected source index, error) per builder.
        let mut selections: Vec<(&str, usize, f64)> = Vec::new();

        let search =
            basic_search(&source, &data.space, &data.cost, &problem, n_items).unwrap();
        let best = search.bellwether().expect("basic search finds a bellwether");
        selections.push(("basic", best.source_index, best.error.value));

        let rf = build_rainforest(&source, &data.space, &data.items, None, &problem, &tree_cfg)
            .unwrap();
        let info = rf.root().info.as_ref().expect("RF root bellwether");
        selections.push(("rainforest", info.region_index, info.error));

        let naive_tree =
            build_naive_tree(&source, &data.space, &data.items, None, &problem, &tree_cfg)
                .unwrap();
        let info = naive_tree.root().info.as_ref().expect("naive-tree root bellwether");
        selections.push(("naive_tree", info.region_index, info.error));

        let ncube = build_naive_cube(
            &source,
            &data.space,
            &data.item_space,
            &data.item_coords,
            &problem,
            &cube_cfg,
        )
        .unwrap();
        let cell = ncube.cell(&root_subset).expect("naive cube root cell");
        selections.push(("naive_cube", cell.region_index, cell.error.value));

        let scube = build_single_scan_cube(
            &source,
            &data.space,
            &data.item_space,
            &data.item_coords,
            &problem,
            &cube_cfg,
        )
        .unwrap();
        let cell = scube.cell(&root_subset).expect("single-scan cube root cell");
        selections.push(("single_scan_cube", cell.region_index, cell.error.value));

        if measure == ErrorMeasure::TrainingSet {
            let ocube = build_optimized_cube(
                &source,
                &data.space,
                &data.item_space,
                &data.item_coords,
                &problem,
                &cube_cfg,
            )
            .unwrap();
            let cell = ocube.cell(&root_subset).expect("optimized cube root cell");
            selections.push(("optimized_cube", cell.region_index, cell.error.value));
        }

        let (_, want_idx, want_err) = selections[0];
        for (name, idx, err) in &selections {
            assert_eq!(
                *idx, want_idx,
                "{name} selected region {idx}, basic search selected {want_idx} ({measure:?})"
            );
            let diff = (err - want_err).abs();
            assert!(
                diff < 1e-8 * want_err.abs() || diff < 1e-9,
                "{name} error {err} vs basic {want_err} ({measure:?})"
            );
        }

        // The item-fold CV cube partitions folds by item hash instead of
        // row shuffle — numerically a different estimate, but it must
        // still pick the same bellwether for the all-items subset.
        if measure != ErrorMeasure::TrainingSet {
            let cvcube = build_optimized_cube_cv(
                &source,
                &data.space,
                &data.item_space,
                &data.item_coords,
                &problem,
                &cube_cfg,
                10,
                0xBE11,
            )
            .unwrap();
            let cell = cvcube.cell(&root_subset).expect("CV cube root cell");
            assert_eq!(
                cell.region_index, want_idx,
                "item-fold CV cube selected region {}, others selected {want_idx}",
                cell.region_index
            );
        }
    }
}
