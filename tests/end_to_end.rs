//! End-to-end integration: generate → label with a query → CUBE pass →
//! entire training data → basic bellwether search, asserting the
//! planted structure is recovered and the quality baselines order as
//! the paper's Figure 7 requires.

use bellwether::prelude::*;
use bellwether_core::build_cube_input;
use std::collections::HashMap;

struct Pipeline {
    data: bellwether_datagen::RetailDataset,
    targets: HashMap<i64, f64>,
    cube_input: CubeInput,
    source: MemorySource,
}

fn pipeline(n_items: usize, seed: u64) -> Pipeline {
    let mut cfg = RetailConfig::mail_order(n_items, seed);
    cfg.months = 8;
    cfg.converge_month = 6;
    cfg.states = Some(vec![
        "MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH", "PA", "GA", "VA", "NC",
    ]);
    let data = generate_retail(&cfg);
    let targets = global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let cube = cube_pass(&data.space, &cube_input);
    let regions = data.space.all_regions();
    let source = build_memory_source(&cube, &regions, &data.items, &targets);
    Pipeline {
        data,
        targets,
        cube_input,
        source,
    }
}

#[test]
fn planted_bellwether_is_recovered() {
    let p = pipeline(150, 11);
    let config = BellwetherConfig::builder(30.0)
        .min_coverage(0.5)
        .min_examples(20)
        .build()
        .unwrap();
    let result = basic_search(&p.source, &p.data.space, &p.data.cost, &config, 150).unwrap();
    let best = result.bellwether().expect("bellwether exists");
    assert!(
        best.label.contains("MD"),
        "expected an MD region, got {}",
        best.label
    );
    // The planted signal converges at month 6; longer affordable
    // intervals should include it.
    assert!(best.cost <= 30.0);
}

#[test]
fn bellwether_beats_average_and_sampling() {
    let p = pipeline(150, 12);
    let config = BellwetherConfig::builder(30.0)
        .min_coverage(0.5)
        .min_examples(20)
        .build()
        .unwrap();
    let result =
        basic_search(&p.source, &p.data.space, &p.data.cost, &config, 150).unwrap();
    let bel = result.bellwether().unwrap().error.value;
    let avg = result.average_error().unwrap();
    let smp = sampling_baseline_error(
        &p.data.space,
        &p.cube_input,
        &p.data.items,
        &p.targets,
        &p.data.cost,
        &config,
        3,
        77,
    )
    .unwrap()
    .unwrap();
    assert!(bel < avg, "Bel {bel} < Avg {avg}");
    assert!(bel < smp, "Bel {bel} < Smp {smp}");
}

#[test]
fn error_decreases_with_budget_until_convergence() {
    let p = pipeline(150, 13);
    let mut errors = Vec::new();
    for budget in [10.0, 20.0, 40.0, 80.0] {
        let config = BellwetherConfig::builder(budget)
            .min_coverage(0.5)
            .min_examples(20)
            .build()
            .unwrap();
        let result =
            basic_search(&p.source, &p.data.space, &p.data.cost, &config, 150).unwrap();
        errors.push(result.bellwether().map(|b| b.error.value));
    }
    let errs: Vec<f64> = errors.into_iter().flatten().collect();
    assert!(errs.len() >= 3, "most budgets feasible");
    // Non-strictly decreasing overall: later budgets can only widen the
    // feasible set, so the minimum cannot increase.
    for w in errs.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "error must not increase with budget: {errs:?}"
        );
    }
}

#[test]
fn indistinguishability_drops_once_signal_converges() {
    let p = pipeline(150, 14);
    let frac_at = |budget: f64| {
        let config = BellwetherConfig::builder(budget)
            .min_coverage(0.5)
            .min_examples(20)
            .build()
            .unwrap();
        basic_search(&p.source, &p.data.space, &p.data.cost, &config, 150)
            .unwrap()
            .indistinguishable_fraction(0.95)
            .unwrap_or(1.0)
    };
    // Once [1-6, MD] is affordable the bellwether is nearly unique.
    assert!(frac_at(60.0) < 0.15, "converged bellwether should be near-unique");
}

#[test]
fn training_set_error_tracks_cv_error() {
    // The Fig. 7(a)-vs-(c) claim at pipeline level.
    let p = pipeline(150, 15);
    let cv_cfg = BellwetherConfig::builder(40.0)
        .min_coverage(0.5)
        .min_examples(20)
        .error_measure(ErrorMeasure::cv10())
        .build()
        .unwrap();
    let mut tr_cfg = cv_cfg.clone();
    tr_cfg.error_measure = ErrorMeasure::TrainingSet;
    let cv = basic_search(&p.source, &p.data.space, &p.data.cost, &cv_cfg, 150).unwrap();
    let tr = basic_search(&p.source, &p.data.space, &p.data.cost, &tr_cfg, 150).unwrap();
    let (cb, tb) = (cv.bellwether().unwrap(), tr.bellwether().unwrap());
    // Same (or equally good) region and similar error magnitude.
    let rel = (cb.error.value - tb.error.value).abs() / cb.error.value.max(1e-9);
    assert!(rel < 0.25, "cv {} vs training {}", cb.error.value, tb.error.value);
}

#[test]
fn disk_backed_pipeline_matches_memory() {
    use bellwether_core::write_disk_source;
    let mut cfg = RetailConfig::mail_order(60, 16);
    cfg.months = 5;
    cfg.converge_month = 4;
    cfg.states = Some(vec!["MD", "WI", "CA", "TX"]);
    let data = generate_retail(&cfg);
    let targets = global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let cube = cube_pass(&data.space, &cube_input);
    let regions = data.space.all_regions();
    let mem = build_memory_source(&cube, &regions, &data.items, &targets);

    let path = std::env::temp_dir().join("bw_e2e_disk.bwtd");
    write_disk_source(&path, &cube, &regions, &data.space, &data.items, &targets).unwrap();
    let disk = DiskSource::open(&path).unwrap();

    let config = BellwetherConfig::builder(25.0)
        .min_coverage(0.5)
        .min_examples(10)
        .build()
        .unwrap();
    let a = basic_search(&mem, &data.space, &data.cost, &config, 60).unwrap();
    let b = basic_search(&disk, &data.space, &data.cost, &config, 60).unwrap();
    assert_eq!(
        a.bellwether().map(|r| r.region.clone()),
        b.bellwether().map(|r| r.region.clone())
    );
    assert_eq!(a.reports.len(), b.reports.len());
    std::fs::remove_file(&path).ok();
}
