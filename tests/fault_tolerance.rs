//! Fault-tolerance properties, spanning storage and the scan engine:
//!
//! * deterministic injected transients, absorbed by `RetryingSource`,
//!   leave every builder's output bit-identical to a clean sequential
//!   run at every tested thread count;
//! * any single-byte flip of a checksummed (v2) block is detected and
//!   classified as corruption;
//! * on-disk corruption surfaces from a `Strict` scan as a structured
//!   `RegionRead` error naming the failing region — never a panic or
//!   abort — at every thread count;
//! * `SkipUnreadable` turns the same corruption into an exact degraded
//!   -result account (`skipped_regions` + the `scan/regions_skipped`
//!   counter);
//! * injected-fault and retry counters reach a bound `Registry`
//!   snapshot, including its JSON rendering.

use bellwether::prelude::*;
use bellwether_prop::{check, Rng};
use bellwether_storage::format::{decode_block_v2, encode_block_v2, HEADER_LEN};
use std::collections::HashMap;
use std::time::Duration;

/// A retry policy that absorbs `depth` transient failures per region
/// without sleeping (deterministic and fast under test).
fn absorbing_policy() -> RetryPolicy {
    RetryPolicy::builder()
        .max_attempts(4)
        .base_backoff(Duration::ZERO)
        .max_backoff(Duration::ZERO)
        .build()
        .unwrap()
}

/// Random region blocks over an 8-region flat hierarchy, plus the item
/// table and item space the tree/cube builders need.
#[allow(clippy::type_complexity)]
fn random_fixture(
    rng: &mut Rng,
) -> (
    Vec<RegionBlock>,
    RegionSpace,
    ItemTable,
    RegionSpace,
    HashMap<i64, Vec<u32>>,
    usize,
) {
    let leaves = ["ra", "rb", "rc", "rd", "re", "rf", "rg"];
    let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "L", "All", &leaves,
    ))]);
    let n_items = rng.usize_in(10, 24);
    let groups: Vec<&str> = (0..n_items).map(|_| *rng.choice(&["ga", "gb"])).collect();
    let mut blocks = Vec::new();
    for region in 0u32..8 {
        let mut block = RegionBlock::new(vec![region], 2);
        for id in 0..n_items as i64 {
            if rng.flip(0.8) {
                block.push(id, &[1.0, rng.f64_in(-10.0, 10.0)], rng.f64_in(-50.0, 50.0));
            }
        }
        blocks.push(block);
    }
    let items = ItemTable::from_table(
        &Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("g", DataType::Str)]).unwrap(),
            vec![
                Column::from_ints((0..n_items as i64).collect()),
                Column::from_strs(&groups),
            ],
        )
        .unwrap(),
        "id",
        &[],
        &["g"],
    )
    .unwrap();
    let item_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "G",
        "Any",
        &["ga", "gb"],
    ))]);
    let item_coords: HashMap<i64, Vec<u32>> = (0..n_items as i64)
        .map(|id| (id, vec![if groups[id as usize] == "ga" { 1 } else { 2 }]))
        .collect();
    (blocks, region_space, items, item_space, item_coords, n_items)
}

/// Canonical rendering of a tree (categorical criteria hold HashMaps).
fn canon_tree(tree: &BellwetherTree) -> Vec<String> {
    tree.nodes
        .iter()
        .map(|n| {
            let split = n.split.as_ref().map(|(c, children)| match c {
                SplitCriterion::Categorical { attr, code_children } => {
                    let mut pairs: Vec<_> =
                        code_children.iter().map(|(k, v)| (*k, *v)).collect();
                    pairs.sort_unstable();
                    format!("cat attr={attr} {pairs:?} -> {children:?}")
                }
                SplitCriterion::Numeric { attr, threshold } => {
                    format!("num attr={attr} t={threshold:?} -> {children:?}")
                }
            });
            format!(
                "d{} rows{:?} info{:?} split{:?} skipped{:?}",
                n.depth, n.item_rows, n.info, split, tree.skipped_regions
            )
        })
        .collect()
}

/// Canonical rendering of a cube (cell HashMap order is arbitrary).
fn canon_cube(cube: &BellwetherCube) -> Vec<(RegionId, String)> {
    let mut v: Vec<_> = cube
        .cells
        .iter()
        .map(|(k, c)| (k.clone(), format!("{c:?} skipped{:?}", cube.skipped_regions)))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Every injected transient IO failure, absorbed by a `RetryingSource`,
/// must leave search, tree and cube results bit-identical to a clean
/// sequential run — for threads ∈ {1, 2, 4}. The acceptance property of
/// the fault-tolerance layer: retries are invisible to computation.
#[test]
fn retried_transients_are_bit_identical_to_clean_runs() {
    check("retried_transients_are_bit_identical", 4, |rng| {
        let (blocks, region_space, items, item_space, item_coords, n_items) =
            random_fixture(rng);
        let fault_seed = rng.next_u64();

        let config_for = |par: Parallelism| {
            BellwetherConfig::builder(1e9)
                .min_coverage(0.0)
                .min_examples(3)
                .error_measure(ErrorMeasure::TrainingSet)
                .parallelism(par)
                .build()
                .unwrap()
        };
        let cost = UniformCellCost { rate: 1.0 };
        let tree_cfg = TreeConfig {
            min_node_items: 4,
            ..TreeConfig::default()
        };
        let cube_cfg = CubeConfig { min_subset_size: 3 };

        let run_all = |source: &dyn TrainingSource, cfg: &BellwetherConfig| -> Vec<String> {
            let search = basic_search(source, &region_space, &cost, cfg, n_items).unwrap();
            let rf =
                build_rainforest(source, &region_space, &items, None, cfg, &tree_cfg).unwrap();
            let cube = build_optimized_cube(
                source,
                &region_space,
                &item_space,
                &item_coords,
                cfg,
                &cube_cfg,
            )
            .unwrap();
            vec![
                format!("{search:?}"),
                format!("{:?}", canon_tree(&rf)),
                format!("{:?}", canon_cube(&cube)),
            ]
        };

        let baseline = run_all(
            &MemorySource::new(blocks.clone()),
            &config_for(Parallelism::sequential()),
        );

        for threads in [1usize, 2, 4] {
            // Every region fails twice before succeeding; the policy
            // allows four attempts, so the retries absorb all of it.
            let plan = FaultPlan::new(fault_seed).transient_every(1, 2);
            let faulty = FaultySource::new(MemorySource::new(blocks.clone()), plan);
            let retrying = RetryingSource::new(faulty, absorbing_policy());
            let cfg = config_for(Parallelism::fixed(threads).with_min_chunk(1));
            assert_eq!(
                run_all(&retrying, &cfg),
                baseline,
                "threads={threads}: injected transients changed a result"
            );
            assert!(
                retrying.retries() >= 2 * 8,
                "every region should have needed retries, saw {}",
                retrying.retries()
            );
            assert!(retrying.inner().faults_injected() >= 2 * 8);
        }
    });
}

/// Flipping any single bit anywhere in a checksummed (v2) block — the
/// payload or the trailer itself — must surface as a classified
/// corruption error, for arbitrary block contents.
#[test]
fn any_single_bit_flip_in_a_v2_block_is_detected() {
    check("any_single_bit_flip_is_detected", 128, |rng| {
        let p = rng.usize_in(1, 4);
        let mut block = RegionBlock::new(vec![rng.u32_in(0, 6)], p as u32);
        for id in 0..rng.i64_in(0, 20) {
            let x: Vec<f64> = (0..p).map(|_| rng.f64_in(-100.0, 100.0)).collect();
            block.push(id, &x, rng.f64_in(-100.0, 100.0));
        }
        let mut buf = Vec::new();
        encode_block_v2(&block, &mut buf);
        assert!(decode_block_v2(&buf).is_ok());

        let pos = rng.below(buf.len());
        let bit = 1u8 << rng.below(8);
        buf[pos] ^= bit;
        let err = decode_block_v2(&buf).expect_err("flip must not decode");
        assert!(
            is_corrupt(&err),
            "flip at byte {pos} gave an unclassified error: {err}"
        );
    });
}

/// Write a real training file, then flip one byte inside region 0's
/// block on disk. Strict scans must surface the corruption as
/// `BellwetherError::RegionRead {{ index: 0, .. }}` with a classified
/// corrupt-block source — identically at threads 1, 2 and 4, and never
/// as a panic.
#[test]
fn on_disk_corruption_names_the_failing_region_under_strict_scans() {
    let dir = std::env::temp_dir().join("bw_fault_tolerance_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("strict.bwtd");

    let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "L",
        "All",
        &["ra", "rb", "rc"],
    ))]);
    let mut writer = bellwether_storage::TrainingWriter::create(&path, 2, 1).unwrap();
    for region in 0u32..4 {
        let mut block = RegionBlock::new(vec![region], 2);
        for id in 0..12i64 {
            block.push(id, &[1.0, (id * (region as i64 + 1)) as f64], id as f64);
        }
        writer.write_region(&block).unwrap();
    }
    writer.finish().unwrap();

    // Flip one byte inside the first block's payload (blocks start
    // right after the header).
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[HEADER_LEN + 8] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let cost = UniformCellCost { rate: 1.0 };
    for threads in [1usize, 2, 4] {
        let source = DiskSource::open(&path).unwrap();
        let config = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(3)
            .error_measure(ErrorMeasure::TrainingSet)
            .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
            .build()
            .unwrap();
        let err = basic_search(&source, &region_space, &cost, &config, 12)
            .expect_err("corrupt region must fail a strict scan");
        match err {
            BellwetherError::RegionRead { index, source } => {
                assert_eq!(index, 0, "threads={threads}: wrong failing region");
                assert!(
                    is_corrupt(&source),
                    "threads={threads}: unclassified source error: {source}"
                );
            }
            other => panic!("threads={threads}: expected RegionRead, got {other}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The same corrupt file under `SkipUnreadable`: the search completes,
/// names exactly the dropped region, and the skip reaches the bound
/// registry's counter and JSON snapshot — alongside the storage-layer
/// corrupt-block and retry counters.
#[test]
fn skip_policy_accounts_for_corruption_and_counters_reach_the_registry() {
    let dir = std::env::temp_dir().join("bw_fault_tolerance_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("skip.bwtd");

    let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "L",
        "All",
        &["ra", "rb", "rc"],
    ))]);
    let mut writer = bellwether_storage::TrainingWriter::create(&path, 2, 1).unwrap();
    for region in 0u32..4 {
        let mut block = RegionBlock::new(vec![region], 2);
        for id in 0..12i64 {
            block.push(id, &[1.0, (id * (region as i64 + 1)) as f64], id as f64);
        }
        writer.write_region(&block).unwrap();
    }
    writer.finish().unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[HEADER_LEN + 8] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let reg = Registry::shared();
    // Layer the full stack: disk → fault injection (transients only) →
    // retries, all bound to one registry.
    let disk = DiskSource::open_with_registry(&path, &reg).unwrap();
    let plan = FaultPlan::new(7).transient_every(1, 1);
    let faulty = FaultySource::with_registry(disk, plan, &reg);
    let retrying = RetryingSource::with_registry(faulty, absorbing_policy(), &reg);

    let config = BellwetherConfig::builder(1e9)
        .min_coverage(0.0)
        .min_examples(3)
        .error_measure(ErrorMeasure::TrainingSet)
        .scan_policy(ScanPolicy::SkipUnreadable { max_skipped: 1 })
        .recorder(reg.clone())
        .build()
        .unwrap();
    let cost = UniformCellCost { rate: 1.0 };
    let result = basic_search(&retrying, &region_space, &cost, &config, 12).unwrap();
    assert_eq!(result.skipped_regions, vec![0], "exactly region 0 was dropped");
    assert!(!result.reports.is_empty(), "healthy regions still evaluated");

    let snap = reg.snapshot();
    assert_eq!(snap.regions_skipped(), 1);
    assert_eq!(snap.corrupt_blocks(), 1);
    assert!(snap.retries() >= 4, "transients on every region get retried");
    assert!(snap.faults_injected() >= 4);
    let json = snap.to_json();
    for key in [
        "scan/regions_skipped",
        "storage/corrupt_blocks",
        "storage/retries",
        "storage/faults_injected",
    ] {
        assert!(json.contains(key), "snapshot JSON lacks {key}: {json}");
    }
    std::fs::remove_file(&path).ok();
}
