//! Integration tests for the §3.4 extension features on generated
//! retail data: automatic feature generation, the linear optimization
//! criterion, greedy combinatorial search, tree pruning, and the
//! algebraic cross-validated cube.

use bellwether::prelude::*;
use bellwether_core::{
    basic_search_linear, build_cube_input, build_optimized_cube_cv, build_rainforest,
    build_single_scan_cube, greedy_combinatorial_search, prune_tree, LinearCriterion,
};
use std::collections::HashMap;

fn dataset() -> (
    bellwether_datagen::RetailDataset,
    HashMap<i64, f64>,
    CubeInput,
    MemorySource,
) {
    let mut cfg = RetailConfig::mail_order(120, 77);
    cfg.months = 6;
    cfg.converge_month = 4;
    cfg.states = Some(vec!["MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH"]);
    let data = generate_retail(&cfg);
    let targets = global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let cube = cube_pass(&data.space, &cube_input);
    let regions = data.space.all_regions();
    let source = build_memory_source(&cube, &regions, &data.items, &targets);
    (data, targets, cube_input, source)
}

#[test]
fn auto_generated_queries_run_end_to_end() {
    let (data, targets, _, _) = dataset();
    let fk_of: HashMap<String, String> =
        [("catalogs".to_string(), "catalog".to_string())].into();
    let queries = bellwether_core::auto_generate_queries(&data.db, &fk_of).unwrap();
    assert!(queries.len() >= 8, "schema yields a rich feature set");
    let input = build_cube_input(&data.db, &data.space, &queries).unwrap();
    let cube = cube_pass(&data.space, &input);
    let regions = data.space.all_regions();
    let source = build_memory_source(&cube, &regions, &data.items, &targets);
    let config = BellwetherConfig::builder(20.0)
        .min_coverage(0.5)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let found =
        basic_search(&source, &data.space, &data.cost, &config, data.items.len()).unwrap();
    assert!(found.bellwether().is_some());
}

#[test]
fn linear_criterion_prefers_cheap_regions_as_weight_grows() {
    let (data, _targets, _, source) = dataset();
    let config = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let free = basic_search_linear(
        &source,
        &data.space,
        &data.cost,
        &config,
        data.items.len(),
        LinearCriterion {
            cost_weight: 0.0,
            coverage_weight: 0.0,
        },
    )
    .unwrap();
    let heavy = basic_search_linear(
        &source,
        &data.space,
        &data.cost,
        &config,
        data.items.len(),
        LinearCriterion {
            cost_weight: 50.0,
            coverage_weight: 0.0,
        },
    )
    .unwrap();
    let (free_best, _) = free.bellwether().unwrap();
    let (heavy_best, _) = heavy.bellwether().unwrap();
    assert!(
        heavy_best.cost <= free_best.cost,
        "a higher cost weight must not pick a costlier region \
         ({} vs {})",
        heavy_best.cost,
        free_best.cost
    );
}

#[test]
fn combinatorial_search_never_loses_to_single_region_choice() {
    let (data, targets, cube_input, source) = dataset();
    let config = BellwetherConfig::builder(12.0)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    // Single-region bellwether under the same budget.
    let single =
        basic_search(&source, &data.space, &data.cost, &config, data.items.len()).unwrap();
    let combo = greedy_combinatorial_search(
        &data.space,
        &cube_input,
        &data.items,
        &targets,
        &data.cost,
        &config,
        4,
    )
    .unwrap();
    let (Some(single), Some(combo)) = (single.bellwether(), combo) else {
        panic!("both searches should find something at this budget");
    };
    // The greedy's first step considers every affordable single region,
    // so its final error can't exceed the single-region optimum (both
    // use the same training-set measure over the same features).
    assert!(
        combo.error.value <= single.error.value + 1e-9,
        "combo {} vs single {}",
        combo.error.value,
        single.error.value
    );
    assert!(combo.total_cost <= 12.0);
}

#[test]
fn pruning_reduces_or_keeps_leaves_and_preserves_routing() {
    let (data, _targets, _, source) = dataset();
    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(15)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let tree_cfg = TreeConfig {
        min_node_items: 20,
        max_numeric_splits: 8,
        ..TreeConfig::default()
    };
    let mut tree = build_rainforest(
        &source,
        &data.space,
        &data.items,
        None,
        &problem,
        &tree_cfg,
    )
    .unwrap();
    let before = tree.num_leaves();
    prune_tree(&mut tree, 1e12);
    assert!(tree.num_leaves() <= before);
    assert_eq!(tree.num_leaves(), 1, "infinite penalty collapses the tree");
    for &id in data.items.ids() {
        assert!(tree.predicting_info(&data.items, id).is_some());
    }
}

#[test]
fn cv_cube_agrees_with_single_scan_on_winning_regions() {
    let (data, _targets, _, source) = dataset();
    let cube_cfg = CubeConfig {
        min_subset_size: 20,
    };
    // The CV cube's fold assignment differs from the CV measure's
    // shuffle, so compare *regions*, which are robust, not errors.
    let ts_problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let single = build_single_scan_cube(
        &source,
        &data.space,
        &data.item_space,
        &data.item_coords,
        &ts_problem,
        &cube_cfg,
    )
    .unwrap();
    let cv = build_optimized_cube_cv(
        &source,
        &data.space,
        &data.item_space,
        &data.item_coords,
        &ts_problem,
        &cube_cfg,
        5,
        42,
    )
    .unwrap();
    assert_eq!(single.cells.len(), cv.cells.len());
    for (subset, cell) in &cv.cells {
        // CV errors are genuine estimates with spread.
        assert!(cell.error.value.is_finite());
        // Winning regions should be strongly planted → usually agree.
        let ts_cell = &single.cells[subset];
        assert_eq!(
            cell.region.0[1], ts_cell.region.0[1],
            "CV and training-set cubes should agree on the planted state \
             for subset {subset:?}"
        );
    }
}
