//! Cross-crate verification of the paper's formal claims on realistic
//! (generated) data, larger than the unit-test fixtures:
//!
//! * Lemma 1 — RF bellwether tree ≡ naive bellwether tree, at `l` scans;
//! * Lemma 2 — single-scan cube ≡ naive cube, at 1 scan;
//! * Theorem 1 — the optimized cube (suffstats rollup) ≡ single-scan.

use bellwether::prelude::*;
use bellwether_core::{
    build_naive_cube, build_naive_tree, build_optimized_cube, build_rainforest,
    build_single_scan_cube, CubeConfig, ErrorMeasure, TreeConfig,
};

fn workload() -> (bellwether_datagen::ScaleWorkload, MemorySource) {
    let cfg = ScaleConfig {
        n_items: 400,
        fact_dim_leaves: [3, 3],
        item_hierarchy_leaves: [3, 2, 2],
        n_numeric_attrs: 3,
        regional_features: 4,
        bellwether_noise: 0.5,
        seed: 1234,
    };
    let w = build_scale_workload(&cfg);
    let src = w.memory_source();
    (w, src)
}

fn problem() -> BellwetherConfig {
    BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap()
}

fn tree_cfg() -> TreeConfig {
    TreeConfig {
        max_depth: 3,
        min_node_items: 60,
        max_numeric_splits: 5,
        ..TreeConfig::default()
    }
}

#[test]
fn lemma_1_rf_equals_naive_tree() {
    let (w, src) = workload();
    let naive =
        build_naive_tree(&src, &w.region_space, &w.items, None, &problem(), &tree_cfg())
            .unwrap();
    let rf =
        build_rainforest(&src, &w.region_space, &w.items, None, &problem(), &tree_cfg())
            .unwrap();

    // Structural equality: same node count, same leaf regions and item
    // partitions level by level.
    assert_eq!(naive.nodes.len(), rf.nodes.len());
    assert_eq!(naive.num_leaves(), rf.num_leaves());
    for id in w.items.ids() {
        let a = naive.predicting_info(&w.items, *id).unwrap();
        let b = rf.predicting_info(&w.items, *id).unwrap();
        assert_eq!(a.region, b.region, "item {id} routed differently");
        assert!((a.error - b.error).abs() < 1e-9);
    }
}

#[test]
fn lemma_1_rf_scan_budget() {
    let (w, src) = workload();
    src.stats().reset();
    let rf =
        build_rainforest(&src, &w.region_space, &w.items, None, &problem(), &tree_cfg())
            .unwrap();
    let levels = rf.depth() as u64 + 1;
    let nodes = rf.nodes.len() as u64;
    let regions = src.num_regions() as u64;
    assert_eq!(
        src.snapshot().regions_read(),
        levels * regions + nodes,
        "RF must scan once per level plus one fit-read per node"
    );
}

#[test]
fn lemma_2_single_scan_equals_naive_cube() {
    let (w, src) = workload();
    let cc = CubeConfig {
        min_subset_size: 25,
    };
    let naive = build_naive_cube(
        &src,
        &w.region_space,
        &w.item_space,
        &w.item_coords,
        &problem(),
        &cc,
    )
    .unwrap();
    let single = build_single_scan_cube(
        &src,
        &w.region_space,
        &w.item_space,
        &w.item_coords,
        &problem(),
        &cc,
    )
    .unwrap();
    assert_eq!(naive.cells.len(), single.cells.len());
    assert!(!naive.cells.is_empty());
    for (subset, a) in &naive.cells {
        let b = &single.cells[subset];
        assert_eq!(a.region, b.region, "subset {subset:?}");
        assert!((a.error.value - b.error.value).abs() < 1e-9);
        assert_eq!(a.size, b.size);
    }
}

#[test]
fn theorem_1_optimized_equals_single_scan() {
    let (w, src) = workload();
    let cc = CubeConfig {
        min_subset_size: 25,
    };
    let single = build_single_scan_cube(
        &src,
        &w.region_space,
        &w.item_space,
        &w.item_coords,
        &problem(),
        &cc,
    )
    .unwrap();
    let optimized = build_optimized_cube(
        &src,
        &w.region_space,
        &w.item_space,
        &w.item_coords,
        &problem(),
        &cc,
    )
    .unwrap();
    assert_eq!(single.cells.len(), optimized.cells.len());
    for (subset, a) in &single.cells {
        let b = &optimized.cells[subset];
        assert_eq!(a.region, b.region, "subset {subset:?}");
        assert!(
            (a.error.value - b.error.value).abs() < 1e-6,
            "{subset:?}: {} vs {}",
            a.error.value,
            b.error.value
        );
    }
}

#[test]
fn scan_count_ordering_naive_vs_scan_based() {
    let (w, src) = workload();
    let cc = CubeConfig {
        min_subset_size: 25,
    };

    src.stats().reset();
    build_single_scan_cube(
        &src,
        &w.region_space,
        &w.item_space,
        &w.item_coords,
        &problem(),
        &cc,
    )
    .unwrap();
    let single_reads = src.snapshot().regions_read();

    src.stats().reset();
    build_naive_cube(
        &src,
        &w.region_space,
        &w.item_space,
        &w.item_coords,
        &problem(),
        &cc,
    )
    .unwrap();
    let naive_reads = src.snapshot().regions_read();
    assert!(
        naive_reads > 3 * single_reads,
        "naive {naive_reads} vs single {single_reads}"
    );
}
