//! Acceptance properties of the multi-process shard coordinator
//! (`bellwether-coord`), spanning the frame protocol, the fault-
//! injected worker lifecycle, the scan engine, and every builder:
//!
//! * under a seeded fault campaign (worker crashes, hangs, corrupt
//!   frames) with sufficient restart budget, all seven builders train
//!   through the **simulated-transport coordinator** to snapshots
//!   *byte-identical* to a clean in-process `ShardedSource` run, at
//!   shards ∈ {1, 2, 4} × threads ∈ {1, 2, 4} — and the campaign is
//!   not vacuous (`coord/worker_restarts > 0`);
//! * the same holds for **real worker OS processes** (the `bellwether`
//!   binary re-invoked in `--worker` mode) under crash + hang +
//!   corrupt-frame injection;
//! * when one shard's restart budget is exhausted,
//!   `ScanPolicy::SkipUnreadable` completes with *exactly* that
//!   shard's regions in the skip accounting, `Strict` fails with a
//!   classified `RegionRead` error, and neither path panics.
//!
//! The simulated campaigns use zero-backoff policies and a transport
//! whose hang symptom is an instant `TimedOut` — no wall-clock sleeps
//! anywhere in the assertions.

use bellwether::prelude::*;
use bellwether_prop::{check, Rng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

/// Zero-backoff restart budget: attempts bound the lifecycle, sleeps
/// are free (and skipped entirely under the simulated transport).
fn restart_budget(attempts: u32) -> CoordinatorConfig {
    CoordinatorConfig::new().restart_policy(
        RetryPolicy::builder()
            .max_attempts(attempts)
            .base_backoff(Duration::ZERO)
            .max_backoff(Duration::ZERO)
            .build()
            .unwrap(),
    )
}

/// Random region blocks over an 8-region flat hierarchy, plus the item
/// table and item space the tree/cube builders need (same shape as the
/// sharded-layout property fixture).
#[allow(clippy::type_complexity)]
fn random_fixture(
    rng: &mut Rng,
) -> (
    Vec<RegionBlock>,
    RegionSpace,
    ItemTable,
    RegionSpace,
    HashMap<i64, Vec<u32>>,
    usize,
) {
    let leaves = ["ra", "rb", "rc", "rd", "re", "rf", "rg"];
    let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "L", "All", &leaves,
    ))]);
    let n_items = rng.usize_in(10, 24);
    let groups: Vec<&str> = (0..n_items).map(|_| *rng.choice(&["ga", "gb"])).collect();
    let mut blocks = Vec::new();
    for region in 0u32..8 {
        let mut block = RegionBlock::new(vec![region], 2);
        for id in 0..n_items as i64 {
            if rng.flip(0.8) {
                block.push(id, &[1.0, rng.f64_in(-10.0, 10.0)], rng.f64_in(-50.0, 50.0));
            }
        }
        blocks.push(block);
    }
    let items = ItemTable::from_table(
        &Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("g", DataType::Str)]).unwrap(),
            vec![
                Column::from_ints((0..n_items as i64).collect()),
                Column::from_strs(&groups),
            ],
        )
        .unwrap(),
        "id",
        &[],
        &["g"],
    )
    .unwrap();
    let item_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "G",
        "Any",
        &["ga", "gb"],
    ))]);
    let item_coords: HashMap<i64, Vec<u32>> = (0..n_items as i64)
        .map(|id| (id, vec![if groups[id as usize] == "ga" { 1 } else { 2 }]))
        .collect();
    (blocks, region_space, items, item_space, item_coords, n_items)
}

fn config_for(threads: usize) -> BellwetherConfig {
    BellwetherConfig::builder(1e9)
        .min_coverage(0.0)
        .min_examples(3)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
        .build()
        .unwrap()
}

const BUILDERS: [&str; 7] = [
    "basic",
    "basic_linear",
    "tree_naive",
    "tree_rainforest",
    "cube_naive",
    "cube_single_scan",
    "cube_optimized",
];

/// Run one named builder over any training source and return its
/// snapshot bytes (the serialization is deterministic, so byte equality
/// is model equality). `None` when the search finds no viable region.
#[allow(clippy::too_many_arguments)]
fn snapshot_bytes(
    builder: &str,
    src: &dyn TrainingSource,
    region_space: &RegionSpace,
    items: &ItemTable,
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    n_items: usize,
    config: &BellwetherConfig,
    tag: &str,
) -> Option<Vec<u8>> {
    let cost = UniformCellCost { rate: 1.0 };
    let tc = TreeConfig {
        min_node_items: 4,
        ..TreeConfig::default()
    };
    let cc = CubeConfig { min_subset_size: 3 };
    let mb = ModelBuilder::new(src, items.clone());
    let mb = match builder {
        "basic" => mb.basic(
            basic_search(src, region_space, &cost, config, n_items)
                .unwrap()
                .report()?,
        ),
        "basic_linear" => mb.basic(
            basic_search_linear(
                src,
                region_space,
                &cost,
                config,
                n_items,
                LinearCriterion {
                    cost_weight: 1.0,
                    coverage_weight: 10.0,
                },
            )
            .unwrap()
            .report()?,
        ),
        "tree_naive" => {
            mb.tree(build_naive_tree(src, region_space, items, None, config, &tc).unwrap())
        }
        "tree_rainforest" => {
            mb.tree(build_rainforest(src, region_space, items, None, config, &tc).unwrap())
        }
        "cube_naive" => mb.cube(
            build_naive_cube(src, region_space, item_space, item_coords, config, &cc).unwrap(),
            0.95,
        ),
        "cube_single_scan" => mb.cube(
            build_single_scan_cube(src, region_space, item_space, item_coords, config, &cc)
                .unwrap(),
            0.95,
        ),
        "cube_optimized" => mb.cube(
            build_optimized_cube(src, region_space, item_space, item_coords, config, &cc)
                .unwrap(),
            0.95,
        ),
        other => panic!("unknown builder {other}"),
    };
    let model = mb.build().unwrap();
    let path = tmp(&format!("{tag}_{builder}.bwsn"));
    model.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    Some(bytes)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bw_coord_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write_shards(blocks: &[RegionBlock], shards: usize, tag: &str) -> PathBuf {
    let dir = tmp(&format!("{tag}_s{shards}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut w =
        ShardedWriter::create(&dir, 2, 1, even_shard_plan(blocks.len(), shards)).unwrap();
    for b in blocks {
        w.write_region(b).unwrap();
    }
    w.finish().unwrap();
    dir
}

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.snapshot().counter(name).unwrap_or(0)
}

/// The tentpole acceptance property: a seeded crash + hang +
/// corrupt-frame campaign over the simulated transport, with enough
/// restart budget, trains every builder to bytes identical to the clean
/// in-process `ShardedSource` run, at every shard and thread count —
/// and the faults really happened.
#[test]
fn coordinator_under_fault_campaign_matches_clean_run_for_all_builders() {
    check("coord_sim_campaign_bit_identical", 2, |rng| {
        let (blocks, region_space, items, item_space, item_coords, n_items) =
            random_fixture(rng);
        let clean = MemorySource::new(blocks.clone());
        let fault_seed = rng.next_u64();

        // Clean reference bytes per builder, from the flat in-memory
        // source at one thread.
        let reference: Vec<Option<Vec<u8>>> = BUILDERS
            .iter()
            .map(|b| {
                snapshot_bytes(
                    b,
                    &clean,
                    &region_space,
                    &items,
                    &item_space,
                    &item_coords,
                    n_items,
                    &config_for(1),
                    "coord_clean",
                )
            })
            .collect();

        for shards in [1usize, 2, 4] {
            let dir = write_shards(&blocks, shards, "coord_sim");
            for threads in [1usize, 2, 4] {
                let reg = Registry::new();
                let plan = WorkerFaultPlan::new(fault_seed)
                    .with_crashes(1)
                    .with_hangs(1)
                    .with_corrupts(1);
                // Budget 8 > 3 faulty incarnation bands: guaranteed to
                // converge.
                let coord = bellwether::coord::Coordinator::simulated_with_registry(
                    &dir,
                    plan,
                    restart_budget(8),
                    &reg,
                )
                .unwrap();

                for (b, want) in BUILDERS.iter().zip(&reference) {
                    let got = snapshot_bytes(
                        b,
                        &coord,
                        &region_space,
                        &items,
                        &item_space,
                        &item_coords,
                        n_items,
                        &config_for(threads),
                        "coord_sim",
                    );
                    assert!(
                        got == *want,
                        "{b}: snapshot bytes diverged at shards={shards} threads={threads}"
                    );
                }

                // The equivalence must not be vacuous: workers died and
                // were restarted during the run.
                assert!(
                    counter(&reg, "coord/worker_restarts") > 0,
                    "no worker restarts at shards={shards} threads={threads}"
                );
                assert!(counter(&reg, "coord/reads") > 0);
                assert_eq!(counter(&reg, "coord/shards_dead"), 0);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    });
}

/// The same campaign against real worker OS processes: the `bellwether`
/// CLI binary re-invoked in `--worker` mode, one process per shard,
/// crashes + hangs + corrupt frames injected from a seeded plan. The
/// hang deadline is real here (workers stall until killed), so it is
/// kept short; assertions never depend on timing, only on bytes and
/// counters.
#[test]
fn real_process_workers_match_clean_run_under_faults() {
    let mut rng = Rng::new(0xC0_0D);
    let (blocks, region_space, items, item_space, item_coords, n_items) =
        random_fixture(&mut rng);
    let clean = MemorySource::new(blocks.clone());
    let reference: Vec<Option<Vec<u8>>> = BUILDERS
        .iter()
        .map(|b| {
            snapshot_bytes(
                b,
                &clean,
                &region_space,
                &items,
                &item_space,
                &item_coords,
                n_items,
                &config_for(1),
                "proc_clean",
            )
        })
        .collect();

    let bin = PathBuf::from(env!("CARGO_BIN_EXE_bellwether"));
    let dir = write_shards(&blocks, 2, "coord_proc");
    let reg = Registry::new();
    let plan = WorkerFaultPlan::new(41).with_crashes(1).with_hangs(1).with_corrupts(1);
    let config = restart_budget(8)
        .deadline(Duration::from_millis(400))
        .unwrap();
    let coord = bellwether::coord::Coordinator::spawn_processes_with_registry(
        &dir, &bin, plan, config, &reg,
    )
    .unwrap();

    for (b, want) in BUILDERS.iter().zip(&reference) {
        let got = snapshot_bytes(
            b,
            &coord,
            &region_space,
            &items,
            &item_space,
            &item_coords,
            n_items,
            &config_for(2),
            "coord_proc",
        );
        assert!(got == *want, "{b}: process-coordinator bytes diverged");
    }

    assert!(counter(&reg, "coord/worker_restarts") > 0, "faults were injected");
    assert!(coord.heartbeat() > 0, "workers answer pings after the campaign");
    let exits = coord.shutdown();
    assert_eq!(exits.len(), 2);
    assert!(
        exits.iter().any(|e| e.spawns > 1),
        "some worker was respawned: {exits:?}"
    );
    // Workers that exited gracefully report a plausible peak RSS.
    for e in &exits {
        if let Some(rss) = e.peak_rss_bytes {
            assert!(rss > 0, "worker {} reported zero RSS", e.worker);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Degradation contract: a poisoned worker exhausts its restart budget;
/// `SkipUnreadable` then completes with *exactly* that shard's regions
/// skipped, `Strict` fails with a classified `RegionRead` error, and
/// nothing panics.
#[test]
fn exhausted_restart_budget_degrades_with_exact_skip_accounting() {
    let mut rng = Rng::new(0xDEAD);
    let (blocks, region_space, ..) = random_fixture(&mut rng);
    let shards = 4; // 8 regions → worker 1 owns regions 2..4
    let dir = write_shards(&blocks, shards, "coord_dead");
    let cost = UniformCellCost { rate: 1.0 };

    for threads in [1usize, 2] {
        let reg = Registry::new();
        let plan = WorkerFaultPlan::new(5).with_poisoned(1);
        let coord = bellwether::coord::Coordinator::simulated_with_registry(
            &dir,
            plan,
            restart_budget(2),
            &reg,
        )
        .unwrap();
        let dead_regions: Vec<usize> = coord.regions_of_worker(1).collect();
        assert_eq!(dead_regions, vec![2, 3]);

        // Strict: the scan fails with the failing region classified.
        let strict_cfg = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(3)
            .error_measure(ErrorMeasure::TrainingSet)
            .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
            .build()
            .unwrap();
        match basic_search(&coord, &region_space, &cost, &strict_cfg, 16) {
            Err(BellwetherError::RegionRead { index, .. }) => {
                assert!(
                    dead_regions.contains(&index),
                    "threads={threads}: failing region {index} not owned by the dead worker"
                );
            }
            Err(other) => panic!("threads={threads}: expected RegionRead, got {other}"),
            Ok(_) => panic!("threads={threads}: strict scan over a dead shard must fail"),
        }

        // SkipUnreadable: the search completes and names exactly the
        // dead worker's regions (ascending — scan order is canonical).
        let skip_cfg = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(3)
            .error_measure(ErrorMeasure::TrainingSet)
            .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
            .scan_policy(ScanPolicy::SkipUnreadable { max_skipped: 4 })
            .build()
            .unwrap();
        let result = basic_search(&coord, &region_space, &cost, &skip_cfg, 16).unwrap();
        assert_eq!(
            result.skipped_regions, dead_regions,
            "threads={threads}: skip accounting must name exactly the dead shard's regions"
        );
        assert!(
            !result.reports.is_empty(),
            "threads={threads}: healthy shards still evaluated"
        );

        assert_eq!(counter(&reg, "coord/shards_dead"), 1);
        assert_eq!(coord.dead_workers(), vec![1]);
        // Dead-shard reads fail fast: restarts happened only while the
        // budget was being spent, not once per subsequent read.
        assert_eq!(counter(&reg, "coord/worker_restarts"), 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A skip budget smaller than the dead shard degrades loudly, not
/// silently: the scan reports `TooManyUnreadable` through the builder
/// as an error rather than returning a partial model.
#[test]
fn too_small_skip_budget_fails_loudly() {
    let mut rng = Rng::new(0xBEEF);
    let (blocks, region_space, ..) = random_fixture(&mut rng);
    let dir = write_shards(&blocks, 4, "coord_dead_budget");
    let cost = UniformCellCost { rate: 1.0 };
    let plan = WorkerFaultPlan::new(5).with_poisoned(1);
    let coord =
        bellwether::coord::Coordinator::simulated(&dir, plan, restart_budget(2)).unwrap();
    let cfg = BellwetherConfig::builder(1e9)
        .min_coverage(0.0)
        .min_examples(3)
        .error_measure(ErrorMeasure::TrainingSet)
        .scan_policy(ScanPolicy::SkipUnreadable { max_skipped: 1 })
        .build()
        .unwrap();
    assert!(
        basic_search(&coord, &region_space, &cost, &cfg, 16).is_err(),
        "2 dead regions > max_skipped=1 must fail"
    );
    std::fs::remove_dir_all(&dir).ok();
}
