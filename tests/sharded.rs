//! Out-of-core sharded-layout properties, spanning storage, the scan
//! engine, and every builder:
//!
//! * a sharded dataset read through the **full layered stack** — each
//!   shard's `DiskSource` wrapped as
//!   `RetryingSource(FaultySource(CachedSource(disk)))` with transient
//!   faults injected on every region — trains every one of the seven
//!   builders to a snapshot *byte-identical* to a clean in-memory run,
//!   for shards ∈ {1, 2, 3} × threads ∈ {1, 2, 4};
//! * the injected transients really happen (fault and retry counters
//!   are non-zero), so the equivalence is exercised, not vacuous;
//! * a truncated shard file and a doctored manifest byte count are both
//!   rejected at open time with structured errors, never a panic.

use bellwether::prelude::*;
use bellwether_prop::{check, Rng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

/// Absorbs the injected transient depth without sleeping.
fn absorbing_policy() -> RetryPolicy {
    RetryPolicy::builder()
        .max_attempts(4)
        .base_backoff(Duration::ZERO)
        .max_backoff(Duration::ZERO)
        .build()
        .unwrap()
}

/// Random region blocks over an 8-region flat hierarchy, plus the item
/// table and item space the tree/cube builders need.
#[allow(clippy::type_complexity)]
fn random_fixture(
    rng: &mut Rng,
) -> (
    Vec<RegionBlock>,
    RegionSpace,
    ItemTable,
    RegionSpace,
    HashMap<i64, Vec<u32>>,
    usize,
) {
    let leaves = ["ra", "rb", "rc", "rd", "re", "rf", "rg"];
    let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "L", "All", &leaves,
    ))]);
    let n_items = rng.usize_in(10, 24);
    let groups: Vec<&str> = (0..n_items).map(|_| *rng.choice(&["ga", "gb"])).collect();
    let mut blocks = Vec::new();
    for region in 0u32..8 {
        let mut block = RegionBlock::new(vec![region], 2);
        for id in 0..n_items as i64 {
            if rng.flip(0.8) {
                block.push(id, &[1.0, rng.f64_in(-10.0, 10.0)], rng.f64_in(-50.0, 50.0));
            }
        }
        blocks.push(block);
    }
    let items = ItemTable::from_table(
        &Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("g", DataType::Str)]).unwrap(),
            vec![
                Column::from_ints((0..n_items as i64).collect()),
                Column::from_strs(&groups),
            ],
        )
        .unwrap(),
        "id",
        &[],
        &["g"],
    )
    .unwrap();
    let item_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "G",
        "Any",
        &["ga", "gb"],
    ))]);
    let item_coords: HashMap<i64, Vec<u32>> = (0..n_items as i64)
        .map(|id| (id, vec![if groups[id as usize] == "ga" { 1 } else { 2 }]))
        .collect();
    (blocks, region_space, items, item_space, item_coords, n_items)
}

fn config_for(threads: usize) -> BellwetherConfig {
    BellwetherConfig::builder(1e9)
        .min_coverage(0.0)
        .min_examples(3)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
        .build()
        .unwrap()
}

const BUILDERS: [&str; 7] = [
    "basic",
    "basic_linear",
    "tree_naive",
    "tree_rainforest",
    "cube_naive",
    "cube_single_scan",
    "cube_optimized",
];

/// Run one named builder over any training source and return its
/// snapshot bytes (the serialization is deterministic, so byte equality
/// is model equality). `None` when the search finds no viable region.
#[allow(clippy::too_many_arguments)]
fn snapshot_bytes(
    builder: &str,
    src: &dyn TrainingSource,
    region_space: &RegionSpace,
    items: &ItemTable,
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    n_items: usize,
    config: &BellwetherConfig,
    tag: &str,
) -> Option<Vec<u8>> {
    let cost = UniformCellCost { rate: 1.0 };
    let tc = TreeConfig {
        min_node_items: 4,
        ..TreeConfig::default()
    };
    let cc = CubeConfig { min_subset_size: 3 };
    let mb = ModelBuilder::new(src, items.clone());
    let mb = match builder {
        "basic" => mb.basic(
            basic_search(src, region_space, &cost, config, n_items)
                .unwrap()
                .report()?,
        ),
        "basic_linear" => mb.basic(
            basic_search_linear(
                src,
                region_space,
                &cost,
                config,
                n_items,
                LinearCriterion {
                    cost_weight: 1.0,
                    coverage_weight: 10.0,
                },
            )
            .unwrap()
            .report()?,
        ),
        "tree_naive" => {
            mb.tree(build_naive_tree(src, region_space, items, None, config, &tc).unwrap())
        }
        "tree_rainforest" => {
            mb.tree(build_rainforest(src, region_space, items, None, config, &tc).unwrap())
        }
        "cube_naive" => mb.cube(
            build_naive_cube(src, region_space, item_space, item_coords, config, &cc).unwrap(),
            0.95,
        ),
        "cube_single_scan" => mb.cube(
            build_single_scan_cube(src, region_space, item_space, item_coords, config, &cc)
                .unwrap(),
            0.95,
        ),
        "cube_optimized" => mb.cube(
            build_optimized_cube(src, region_space, item_space, item_coords, config, &cc)
                .unwrap(),
            0.95,
        ),
        other => panic!("unknown builder {other}"),
    };
    let model = mb.build().unwrap();
    let path = tmp(&format!("{tag}_{builder}.bwsn"));
    model.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    Some(bytes)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bw_sharded_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write_shards(blocks: &[RegionBlock], shards: usize, tag: &str) -> PathBuf {
    let dir = tmp(&format!("{tag}_s{shards}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut w =
        ShardedWriter::create(&dir, 2, 1, even_shard_plan(blocks.len(), shards)).unwrap();
    for b in blocks {
        w.write_region(b).unwrap();
    }
    w.finish().unwrap();
    dir
}

/// The acceptance property of the sharded layout: the layered stack
/// `RetryingSource(FaultySource(CachedSource(disk)))` per shard, with
/// transients injected on every region, trains every builder to the
/// same bytes as a clean single-`MemorySource` run, at every shard and
/// thread count.
#[test]
fn layered_sharded_stack_matches_clean_run_for_all_builders() {
    check("sharded_layered_stack_bit_identical", 2, |rng| {
        let (blocks, region_space, items, item_space, item_coords, n_items) =
            random_fixture(rng);
        let clean = MemorySource::new(blocks.clone());
        let fault_seed = rng.next_u64();

        // Clean reference bytes per builder, from the flat in-memory
        // source at one thread.
        let reference: Vec<Option<Vec<u8>>> = BUILDERS
            .iter()
            .map(|b| {
                snapshot_bytes(
                    b,
                    &clean,
                    &region_space,
                    &items,
                    &item_space,
                    &item_coords,
                    n_items,
                    &config_for(1),
                    "clean",
                )
            })
            .collect();

        for shards in [1usize, 2, 3] {
            let dir = write_shards(&blocks, shards, "layered");
            for threads in [1usize, 2, 4] {
                let reg = Registry::shared();
                let layered = ShardedSource::open_layered(&dir, |disk| {
                    let cached = CachedSource::with_registry(disk, 1 << 16, &reg);
                    let plan = FaultPlan::new(fault_seed).transient_every(1, 2);
                    let faulty = FaultySource::with_registry(cached, plan, &reg);
                    Box::new(RetryingSource::with_registry(
                        faulty,
                        absorbing_policy(),
                        &reg,
                    ))
                })
                .unwrap();

                for (b, want) in BUILDERS.iter().zip(&reference) {
                    let got = snapshot_bytes(
                        b,
                        &layered,
                        &region_space,
                        &items,
                        &item_space,
                        &item_coords,
                        n_items,
                        &config_for(threads),
                        "layered",
                    );
                    assert_eq!(
                        got.as_ref().map(Vec::len),
                        want.as_ref().map(Vec::len),
                        "{b}: snapshot size diverged at shards={shards} threads={threads}"
                    );
                    assert!(
                        got == *want,
                        "{b}: snapshot bytes diverged at shards={shards} threads={threads}"
                    );
                }

                // The equivalence must not be vacuous: transients were
                // injected and absorbed.
                let snap = reg.snapshot();
                assert!(
                    snap.faults_injected() > 0,
                    "no faults injected at shards={shards} threads={threads}"
                );
                assert!(
                    snap.retries() > 0,
                    "no retries recorded at shards={shards} threads={threads}"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    });
}

/// Opening a sharded dataset whose shard file was truncated, or whose
/// manifest byte count was doctored, fails with a structured IO error.
#[test]
fn damaged_sharded_layouts_are_rejected_at_open() {
    let mut rng = Rng::new(11);
    let (blocks, ..) = random_fixture(&mut rng);

    // Truncated shard file.
    let dir = write_shards(&blocks, 2, "trunc");
    let shard0 = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "bwtd"))
        .expect("a shard file exists");
    let bytes = std::fs::read(&shard0).unwrap();
    std::fs::write(&shard0, &bytes[..bytes.len() - 7]).unwrap();
    let err = match ShardedSource::open(&dir) {
        Ok(_) => panic!("truncated shard must not open"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("bytes"),
        "error names the size mismatch: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Doctored manifest (flip one byte in the shard-size field region).
    let dir = write_shards(&blocks, 2, "doctor");
    let manifest_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy().contains("manifest")))
        .expect("a manifest exists");
    let mut bytes = std::fs::read(&manifest_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&manifest_path, &bytes).unwrap();
    assert!(
        ShardedSource::open(&dir).is_err(),
        "doctored manifest must not open"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Exhaustive manifest damage property: *every* truncation length and
/// *every* single-bit flip of an encoded `manifest.bwsm` is rejected by
/// `ShardManifest::decode` with a classified `io::Error` — never a
/// panic, never a silently-wrong manifest. The checksum trailer covers
/// the whole payload and the trailer itself is part of the comparison,
/// so no bit of the file is unprotected; truncations are caught by the
/// length floor or the checksum over the shortened payload.
#[test]
fn every_manifest_truncation_and_bit_flip_is_rejected() {
    let mut rng = Rng::new(23);
    let (blocks, ..) = random_fixture(&mut rng);
    let dir = write_shards(&blocks, 3, "bitflip");
    let manifest_path = dir.join(bellwether::storage::MANIFEST_NAME);
    let bytes = std::fs::read(&manifest_path).unwrap();

    // Sanity: the pristine bytes decode, and they round-trip.
    let clean = ShardManifest::decode(&bytes).expect("pristine manifest decodes");
    assert_eq!(clean.encode(), bytes);

    // Every truncation length, 0..len.
    for len in 0..bytes.len() {
        let err = match ShardManifest::decode(&bytes[..len]) {
            Ok(_) => panic!("truncation to {len} bytes must not decode"),
            Err(e) => e,
        };
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "truncation to {len} is classified"
        );
    }

    // Every single-bit flip at every byte offset.
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[byte] ^= 1 << bit;
            let err = match ShardManifest::decode(&bad) {
                Ok(_) => panic!("flip at byte {byte} bit {bit} must not decode"),
                Err(e) => e,
            };
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "flip at byte {byte} bit {bit} is classified"
            );
        }
    }

    // The same damage written to disk is rejected at dataset open, for
    // a sample of offsets (full coverage above; open adds file IO).
    for byte in (0..bytes.len()).step_by(13) {
        let mut bad = bytes.clone();
        bad[byte] ^= 0x80;
        std::fs::write(&manifest_path, &bad).unwrap();
        assert!(
            ShardedSource::open(&dir).is_err(),
            "on-disk flip at byte {byte} must not open"
        );
    }
    std::fs::write(&manifest_path, &bytes).unwrap();
    assert!(ShardedSource::open(&dir).is_ok(), "restored manifest opens");
    std::fs::remove_dir_all(&dir).ok();
}
