//! Snapshot round-trip properties for the serving layer:
//!
//! * build → snapshot → load → predict is *bit-identical* to predicting
//!   from the in-memory model, for every one of the seven builders
//!   (basic, linear-criterion, naive tree, RF tree, naive cube,
//!   single-scan cube, optimized cube) at threads ∈ {1, 2, 4};
//! * the snapshot bytes themselves are identical across thread counts —
//!   the serialization is deterministic and the builders are
//!   scan-order deterministic;
//! * any single-bit flip of a saved snapshot surfaces from
//!   `BellwetherModel::load` as a structured error — a classified
//!   `CorruptBlock` when the flip lands in a checksummed frame, an
//!   `InvalidData` container error otherwise — and never a panic.

use bellwether::prelude::*;
use bellwether_prop::{check, Rng};
use std::collections::HashMap;
use std::path::PathBuf;

/// Random region blocks over an 8-region flat hierarchy, plus the item
/// table and item space the tree/cube builders need.
#[allow(clippy::type_complexity)]
fn random_fixture(
    rng: &mut Rng,
) -> (
    MemorySource,
    RegionSpace,
    ItemTable,
    RegionSpace,
    HashMap<i64, Vec<u32>>,
    usize,
) {
    let leaves = ["ra", "rb", "rc", "rd", "re", "rf", "rg"];
    let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "L", "All", &leaves,
    ))]);
    let n_items = rng.usize_in(10, 24);
    let groups: Vec<&str> = (0..n_items).map(|_| *rng.choice(&["ga", "gb"])).collect();
    let mut blocks = Vec::new();
    for region in 0u32..8 {
        let mut block = RegionBlock::new(vec![region], 2);
        for id in 0..n_items as i64 {
            if rng.flip(0.8) {
                block.push(id, &[1.0, rng.f64_in(-10.0, 10.0)], rng.f64_in(-50.0, 50.0));
            }
        }
        blocks.push(block);
    }
    let items = ItemTable::from_table(
        &Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("g", DataType::Str)]).unwrap(),
            vec![
                Column::from_ints((0..n_items as i64).collect()),
                Column::from_strs(&groups),
            ],
        )
        .unwrap(),
        "id",
        &[],
        &["g"],
    )
    .unwrap();
    let item_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "G",
        "Any",
        &["ga", "gb"],
    ))]);
    let item_coords: HashMap<i64, Vec<u32>> = (0..n_items as i64)
        .map(|id| (id, vec![if groups[id as usize] == "ga" { 1 } else { 2 }]))
        .collect();
    (
        MemorySource::new(blocks),
        region_space,
        items,
        item_space,
        item_coords,
        n_items,
    )
}

fn config_for(threads: usize) -> BellwetherConfig {
    BellwetherConfig::builder(1e9)
        .min_coverage(0.0)
        .min_examples(3)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads).with_min_chunk(1))
        .build()
        .unwrap()
}

const BUILDERS: [&str; 7] = [
    "basic",
    "basic_linear",
    "tree_naive",
    "tree_rainforest",
    "cube_naive",
    "cube_single_scan",
    "cube_optimized",
];

/// Run one named builder and package its output as a one-method model.
#[allow(clippy::too_many_arguments)]
fn build_model(
    builder: &str,
    src: &MemorySource,
    region_space: &RegionSpace,
    items: &ItemTable,
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    n_items: usize,
    config: &BellwetherConfig,
) -> Option<(BellwetherModel, MethodKind)> {
    let cost = UniformCellCost { rate: 1.0 };
    let tc = TreeConfig {
        min_node_items: 4,
        ..TreeConfig::default()
    };
    let cc = CubeConfig {
        min_subset_size: 3,
    };
    let mb = ModelBuilder::new(src, items.clone());
    let (mb, method) = match builder {
        "basic" => {
            let report = basic_search(src, region_space, &cost, config, n_items)
                .unwrap()
                .report()?;
            (mb.basic(report), MethodKind::Basic)
        }
        "basic_linear" => {
            let report = basic_search_linear(
                src,
                region_space,
                &cost,
                config,
                n_items,
                LinearCriterion {
                    cost_weight: 1.0,
                    coverage_weight: 10.0,
                },
            )
            .unwrap()
            .report()?;
            (mb.basic(report), MethodKind::Basic)
        }
        "tree_naive" => {
            let tree =
                build_naive_tree(src, region_space, items, None, config, &tc).unwrap();
            (mb.tree(tree), MethodKind::Tree)
        }
        "tree_rainforest" => {
            let tree = build_rainforest(src, region_space, items, None, config, &tc).unwrap();
            (mb.tree(tree), MethodKind::Tree)
        }
        "cube_naive" => {
            let cube =
                build_naive_cube(src, region_space, item_space, item_coords, config, &cc)
                    .unwrap();
            (mb.cube(cube, 0.95), MethodKind::Cube)
        }
        "cube_single_scan" => {
            let cube = build_single_scan_cube(
                src,
                region_space,
                item_space,
                item_coords,
                config,
                &cc,
            )
            .unwrap();
            (mb.cube(cube, 0.95), MethodKind::Cube)
        }
        "cube_optimized" => {
            let cube =
                build_optimized_cube(src, region_space, item_space, item_coords, config, &cc)
                    .unwrap();
            (mb.cube(cube, 0.95), MethodKind::Cube)
        }
        other => panic!("unknown builder {other}"),
    };
    Some((mb.build().unwrap(), method))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bw_snapshot_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Predictions as bits, so NaN-safe exact comparison works.
fn predictions(model: &BellwetherModel, method: MethodKind, ids: &[i64]) -> Vec<Option<u64>> {
    ids.iter()
        .map(|&id| model.predict(method, id).map(f64::to_bits))
        .collect()
}

/// The acceptance property of the snapshot layer: for all seven
/// builders at every thread count, save → load changes nothing — the
/// loaded model's predictions are bit-identical — and the snapshot
/// bytes are identical across thread counts.
#[test]
fn roundtrip_is_bit_identical_for_all_builders_and_threads() {
    check("snapshot_roundtrip_bit_identical", 3, |rng| {
        let (src, region_space, items, item_space, item_coords, n_items) =
            random_fixture(rng);
        // All item ids plus ids unknown to the table.
        let mut probe: Vec<i64> = (0..n_items as i64).collect();
        probe.extend([-1, 9_999]);

        let mut built = 0usize;
        for builder in BUILDERS {
            let mut bytes_at_threads: Vec<Vec<u8>> = Vec::new();
            let mut preds_at_threads: Vec<Vec<Option<u64>>> = Vec::new();
            for threads in [1usize, 2, 4] {
                let config = config_for(threads);
                let Some((model, method)) = build_model(
                    builder,
                    &src,
                    &region_space,
                    &items,
                    &item_space,
                    &item_coords,
                    n_items,
                    &config,
                ) else {
                    // A random fixture may fail the coverage floor for
                    // the searches; nothing to round-trip then.
                    continue;
                };
                let path = tmp(&format!("{builder}_{threads}.bwsn"));
                model.save(&path).unwrap();
                let loaded = BellwetherModel::load(&path).unwrap();
                assert_eq!(loaded.methods(), vec![method], "{builder}");

                let before = predictions(&model, method, &probe);
                let after = predictions(&loaded, method, &probe);
                assert_eq!(before, after, "{builder} threads={threads} round-trip");

                bytes_at_threads.push(std::fs::read(&path).unwrap());
                preds_at_threads.push(after);
                built += 1;
                std::fs::remove_file(&path).ok();
            }
            for (i, (bytes, preds)) in bytes_at_threads
                .iter()
                .zip(&preds_at_threads)
                .enumerate()
                .skip(1)
            {
                assert_eq!(
                    bytes, &bytes_at_threads[0],
                    "{builder}: snapshot bytes differ between thread runs 0 and {i}"
                );
                assert_eq!(
                    preds, &preds_at_threads[0],
                    "{builder}: predictions differ between thread runs 0 and {i}"
                );
            }
        }
        // With an unbounded budget and no coverage floor, every builder
        // must actually produce a model — no vacuous pass.
        assert_eq!(
            built,
            BUILDERS.len() * 3,
            "some builder produced no model to round-trip"
        );
    });
}

/// Any single-bit flip anywhere in a saved snapshot must surface as a
/// structured load error — never a panic, never a silently-wrong model.
#[test]
fn single_bit_flip_is_detected_never_panics() {
    check("snapshot_bit_flip_detected", 6, |rng| {
        let (src, region_space, items, item_space, item_coords, n_items) =
            random_fixture(rng);
        let config = config_for(1);
        let (model, method) = build_model(
            "tree_rainforest",
            &src,
            &region_space,
            &items,
            &item_space,
            &item_coords,
            n_items,
            &config,
        )
        .expect("tree build succeeds");
        let path = tmp(&format!("flip_{}.bwsn", rng.next_u64()));
        model.save(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let baseline = predictions(&model, method, &[0, 1]);

        for _ in 0..12 {
            let byte = rng.usize_in(0, clean.len() - 1);
            let bit = rng.usize_in(0, 7) as u8;
            let mut corrupted = clean.clone();
            corrupted[byte] ^= 1 << bit;
            std::fs::write(&path, &corrupted).unwrap();
            match BellwetherModel::load(&path) {
                Err(err) => {
                    // A flip inside a CRC frame classifies as a
                    // CorruptBlock; one in the container framing
                    // (magic, version, section count, footer) is an
                    // InvalidData structural error. Anything else is
                    // an unstructured escape.
                    match &err {
                        BellwetherError::Io(e) => {
                            assert!(
                                is_corrupt(e)
                                    || e.kind() == std::io::ErrorKind::InvalidData,
                                "byte {byte} bit {bit}: unstructured error {e:?}"
                            );
                        }
                        other => {
                            panic!("byte {byte} bit {bit}: unexpected error {other}")
                        }
                    }
                }
                Ok(loaded) => {
                    // Every byte is covered by the magic, the version,
                    // the section count or a section CRC, so no flip
                    // may load successfully.
                    let after = predictions(&loaded, method, &[0, 1]);
                    panic!(
                        "byte {byte} bit {bit}: corrupted snapshot loaded \
                         (predictions before {baseline:?} after {after:?})"
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    });
}
