//! `bellwether` — command-line basic bellwether search over CSV data.
//!
//! ```text
//! bellwether search --fact orders.csv --item-col item \
//!     --time-col week --time-max 52 \
//!     --location-col state --locations WI,MD,CA \
//!     --target-col profit --feature-cols profit,quantity \
//!     --budget 20 --min-coverage 0.5 [--training-set-error] [--top 10]
//! ```
//!
//! The fact CSV needs a header row with: an integer item-id column, an
//! integer time column (1-based points), a string location column, and
//! numeric measure columns. Dimensions are built as `[1..t] × (All →
//! location)`; each feature column contributes a regional `sum`; the
//! target is the global `sum` of `--target-col`; cost is one unit per
//! (time point × location) cell. For richer schemas (reference tables,
//! hierarchies, custom costs) use the library API — see the examples.

use bellwether::prelude::*;
use bellwether_core::build_cube_input;
use std::collections::HashMap;
use std::process::ExitCode;

/// Parsed command-line options.
struct Options {
    fact_path: String,
    item_col: String,
    time_col: String,
    time_max: u32,
    location_col: String,
    locations: Vec<String>,
    target_col: String,
    feature_cols: Vec<String>,
    budget: f64,
    min_coverage: f64,
    min_examples: usize,
    training_set_error: bool,
    top: usize,
}

fn usage() -> &'static str {
    "usage: bellwether search --fact <csv> --item-col <c> --time-col <c> \
     --time-max <T> --location-col <c> --locations <l1,l2,…> \
     --target-col <c> --feature-cols <c1,c2,…> --budget <B> \
     [--min-coverage <f=0.5>] [--min-examples <n=10>] \
     [--training-set-error] [--top <n=10>]"
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let _bin = args.next();
    match args.next().as_deref() {
        Some("search") => {}
        Some(other) => return Err(format!("unknown command {other:?}\n{}", usage())),
        None => return Err(usage().to_string()),
    }
    let mut map: HashMap<String, String> = HashMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}\n{}", usage()));
        };
        if name == "training-set-error" {
            flags.push(name.to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{name} needs a value"));
        };
        map.insert(name.to_string(), value);
    }
    let take = |k: &str| -> Result<String, String> {
        map.get(k).cloned().ok_or_else(|| format!("missing --{k}\n{}", usage()))
    };
    let list = |v: String| -> Vec<String> {
        v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
    };
    Ok(Options {
        fact_path: take("fact")?,
        item_col: take("item-col")?,
        time_col: take("time-col")?,
        time_max: take("time-max")?
            .parse()
            .map_err(|e| format!("--time-max: {e}"))?,
        location_col: take("location-col")?,
        locations: list(take("locations")?),
        target_col: take("target-col")?,
        feature_cols: list(take("feature-cols")?),
        budget: take("budget")?.parse().map_err(|e| format!("--budget: {e}"))?,
        min_coverage: map
            .get("min-coverage")
            .map(|v| v.parse())
            .transpose()
            .map_err(|e| format!("--min-coverage: {e}"))?
            .unwrap_or(0.5),
        min_examples: map
            .get("min-examples")
            .map(|v| v.parse())
            .transpose()
            .map_err(|e| format!("--min-examples: {e}"))?
            .unwrap_or(10),
        training_set_error: flags.iter().any(|f| f == "training-set-error"),
        top: map
            .get("top")
            .map(|v| v.parse())
            .transpose()
            .map_err(|e| format!("--top: {e}"))?
            .unwrap_or(10),
    })
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    // Schema: infer column types from the options.
    let mut fields: Vec<(&str, DataType)> = vec![
        (opts.item_col.as_str(), DataType::Int),
        (opts.time_col.as_str(), DataType::Int),
        (opts.location_col.as_str(), DataType::Str),
    ];
    // Numeric columns: the union of features and the target, once each.
    let mut numeric: Vec<&str> = opts.feature_cols.iter().map(String::as_str).collect();
    if !numeric.contains(&opts.target_col.as_str()) {
        numeric.push(opts.target_col.as_str());
    }
    for c in numeric {
        fields.push((c, DataType::Float));
    }
    let schema = Schema::from_pairs(&fields)?;

    let file = std::fs::File::open(&opts.fact_path)?;
    let reader = std::io::BufReader::new(file);
    let db = bellwether_core::StarDatabase::from_csv(
        (schema, reader),
        opts.item_col.clone(),
        vec![opts.time_col.clone(), opts.location_col.clone()],
        Vec::<(String, Schema, String, std::io::Cursor<&[u8]>)>::new(),
    )?;
    eprintln!("loaded {} fact rows", db.fact.num_rows());

    let location = Hierarchy::flat(
        "Location",
        "All",
        &opts.locations.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let space = RegionSpace::new(vec![
        Dimension::Interval {
            name: "Time".into(),
            max_t: opts.time_max,
        },
        Dimension::Hierarchy(location),
    ]);

    let queries: Vec<_> = opts
        .feature_cols
        .iter()
        .map(|c| bellwether_core::FeatureQuery::FactAgg {
            name: format!("sum_{c}"),
            column: c.clone(),
            func: AggFunc::Sum,
        })
        .collect();
    let targets = bellwether_core::global_target(&db, &opts.target_col, AggFunc::Sum)?;

    // Items: every id appearing in the fact table, no static attributes.
    let mut ids: Vec<i64> = targets.keys().copied().collect();
    ids.sort_unstable();
    let item_table = Table::new(
        Schema::from_pairs(&[("id", DataType::Int)])?,
        vec![Column::from_ints(ids)],
    )?;
    let items = bellwether_core::ItemTable::from_table(&item_table, "id", &[], &[])?;

    let cube_input = build_cube_input(&db, &space, &queries)?;
    let cube = cube_pass(&space, &cube_input);
    let regions = space.all_regions();
    let source = bellwether_core::build_memory_source(&cube, &regions, &items, &targets);

    let measure = if opts.training_set_error {
        ErrorMeasure::TrainingSet
    } else {
        ErrorMeasure::cv10()
    };
    let config = BellwetherConfig::builder(opts.budget)
        .min_coverage(opts.min_coverage)
        .min_examples(opts.min_examples)
        .error_measure(measure)
        .build()
        .unwrap();
    let cost = UniformCellCost { rate: 1.0 };
    let result = basic_search(&source, &space, &cost, &config, items.len())?;

    let mut ranked: Vec<_> = result.reports.iter().collect();
    ranked.sort_by(|a, b| a.error.value.total_cmp(&b.error.value));
    println!(
        "{:<20} {:>10} {:>8} {:>12}",
        "region", "cost", "items", "rmse"
    );
    for report in ranked.iter().take(opts.top) {
        println!(
            "{:<20} {:>10.2} {:>8} {:>12.4}",
            report.label, report.cost, report.n_examples, report.error.value
        );
    }
    match result.bellwether() {
        Some(best) => {
            println!(
                "\nbellwether: {} (cost {:.2}, rmse {:.4}, {} items)",
                best.label, best.cost, best.error.value, best.n_examples
            );
            println!("model coefficients: {:?}", best.model.coefficients());
            Ok(())
        }
        None => Err("no feasible region under the given budget/coverage".into()),
    }
}

fn main() -> ExitCode {
    // Re-invoked as `bellwether --worker ...` by the shard coordinator:
    // serve one shard over stdin/stdout and exit.
    bellwether::coord::maybe_run_worker();
    let opts = match parse_args(std::env::args()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
