//! # bellwether
//!
//! Umbrella crate for the reproduction of *"Bellwether Analysis:
//! Predicting Global Aggregates from Local Regions"* (Chen,
//! Ramakrishnan, Shavlik, Tamma — VLDB 2006).
//!
//! Re-exports the workspace crates under stable paths:
//!
//! * [`table`] — typed columnar tables + extended relational algebra;
//! * [`linreg`] — OLS/WLS regression, Theorem-1 sufficient statistics,
//!   cross-validation, confidence intervals;
//! * [`cube`] — dimensions, regions, CUBE pass, iceberg pruning,
//!   lattice rollup;
//! * [`storage`] — region-partitioned entire-training-data storage;
//! * [`datagen`] — deterministic synthetic workloads;
//! * [`core`] — the paper's algorithms: basic search, bellwether trees
//!   and bellwether cubes, plus item-centric prediction;
//! * [`obs`] — zero-dependency metrics/span observability layer
//!   (attach a [`prelude::Registry`] via
//!   [`prelude::BellwetherConfig::builder`] to profile any run);
//! * [`serve`] — versioned model snapshots served over HTTP: train
//!   once, [`prelude::ModelBuilder`] + `save`, then answer predictions
//!   at QPS from an immutable [`prelude::BellwetherModel`];
//! * [`coord`] — deterministic multi-process shard coordinator: one
//!   worker process per shard behind a CRC-framed protocol, with a
//!   seeded fault-injected lifecycle (crash/hang/corrupt/slow),
//!   bounded restarts, and a replayable simulated transport.
//!
//! ```
//! use bellwether::prelude::*;
//!
//! // Generate a small planted mail-order-style dataset …
//! let mut cfg = RetailConfig::mail_order(60, 42);
//! cfg.months = 6;
//! cfg.converge_month = 4;
//! cfg.states = Some(vec!["MD", "WI", "CA", "TX", "NY", "IL"]);
//! let data = generate_retail(&cfg);
//!
//! // … label items with an aggregate query, build every region's
//! // training set in one CUBE pass …
//! let targets = global_target(&data.db, "profit", AggFunc::Sum).unwrap();
//! let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
//! let result = cube_pass(&data.space, &cube_input);
//! let regions = data.space.all_regions();
//! let source = build_memory_source(&result, &regions, &data.items, &targets);
//!
//! // … and find the bellwether under a budget, with metrics on.
//! let registry = Registry::shared();
//! let config = BellwetherConfig::builder(40.0)
//!     .min_coverage(0.5)
//!     .recorder(registry.clone())
//!     .build()
//!     .unwrap();
//! let search = basic_search(&source, &data.space, &data.cost, &config, data.items.len()).unwrap();
//! let report = search.report().expect("a bellwether exists");
//! assert!(report.n_examples > 0);
//! assert!(registry.snapshot().counter("search/regions_evaluated").unwrap() > 0);
//! ```

pub use bellwether_coord as coord;
pub use bellwether_core as core;
pub use bellwether_cube as cube;
pub use bellwether_datagen as datagen;
pub use bellwether_linreg as linreg;
pub use bellwether_obs as obs;
pub use bellwether_serve as serve;
pub use bellwether_storage as storage;
pub use bellwether_table as table;

/// Common imports for end-to-end use of the library.
///
/// Brings in the space/config types, the search/tree/cube builders,
/// storage sources, the datagen workloads and the observability layer
/// ([`Registry`](bellwether_obs::Registry),
/// [`Recorder`](bellwether_obs::Recorder),
/// [`MetricsSnapshot`](bellwether_obs::MetricsSnapshot) and the
/// [`span!`](bellwether_obs::span) macro). Every example in
/// `examples/` compiles from this module alone.
pub mod prelude {
    pub use bellwether_core::{
        auto_generate_queries, basic_search, basic_search_linear, build_cube_input,
        build_memory_source, build_naive_cube, build_naive_tree, build_optimized_cube,
        build_optimized_cube_cv, build_rainforest, build_single_scan_cube, evaluate_method,
        global_target, greedy_combinatorial_search, prune_tree, render_cross_tab,
        sampling_baseline_error, scan_regions, scan_regions_policy, scan_regions_where,
        scan_regions_where_policy, select_cell_for_item, write_disk_source,
        write_disk_source_in_registry, BasicSearchResult, BellwetherConfig,
        BellwetherConfigBuilder, BellwetherCube, BellwetherError, BellwetherTree, CubeConfig,
        CubeConfigBuilder, ErrorMeasure, EvalContext, FeatureQuery, ItemCentricEval,
        BellwetherModel, BellwetherReport, ItemTable, LinearCriterion, MergeableAccumulator,
        Method, MethodKind, ModelBuilder, ScanPolicy, Scanned, SplitCriterion, StarDatabase,
        TreeConfig, TreeConfigBuilder,
    };
    pub use bellwether_cube::{
        cube_pass, cube_pass_traced, feasible_regions, Constraints, CostModel, CubeInput,
        Dimension, Hierarchy, Parallelism, ProductCost, RegionId, RegionSpace,
        UniformCellCost,
    };
    pub use bellwether_coord::{
        Coordinator, CoordinatorConfig, WorkerExit, WorkerFault, WorkerFaultPlan,
    };
    pub use bellwether_obs::{span, MetricsSnapshot, NoopRecorder, Recorder, Registry};
    pub use bellwether_serve::{ServeConfig, ServeConfigBuilder, Server, ServerHandle};
    pub use bellwether_datagen::{
        build_scale_workload, generate_retail, generate_simulation, RetailConfig, ScaleConfig,
        SimulationConfig,
    };
    pub use bellwether_linreg::{ErrorEstimate, LinearModel, RegSuffStats, RegressionData};
    pub use bellwether_storage::{
        even_shard_plan, is_corrupt, CacheStats, CachedSource, CorruptBlock, DiskSource,
        FaultPlan, FaultySource, MemorySource, RegionBlock, RetryPolicy, RetryPolicyBuilder,
        RetryingSource, ShardManifest, ShardedSource, ShardedWriter, TrainingSource,
    };
    pub use bellwether_table::ops::{AggExpr, AggFunc};
    pub use bellwether_table::{Column, DataType, Predicate, Schema, Table, Value};
}
