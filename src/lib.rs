//! # bellwether
//!
//! Umbrella crate for the reproduction of *"Bellwether Analysis:
//! Predicting Global Aggregates from Local Regions"* (Chen,
//! Ramakrishnan, Shavlik, Tamma — VLDB 2006).
//!
//! Re-exports the workspace crates under stable paths:
//!
//! * [`table`] — typed columnar tables + extended relational algebra;
//! * [`linreg`] — OLS/WLS regression, Theorem-1 sufficient statistics,
//!   cross-validation, confidence intervals;
//! * [`cube`] — dimensions, regions, CUBE pass, iceberg pruning,
//!   lattice rollup;
//! * [`storage`] — region-partitioned entire-training-data storage;
//! * [`datagen`] — deterministic synthetic workloads;
//! * [`core`] — the paper's algorithms: basic search, bellwether trees
//!   and bellwether cubes, plus item-centric prediction.
//!
//! ```
//! use bellwether::prelude::*;
//!
//! // Generate a small planted mail-order-style dataset …
//! let mut cfg = RetailConfig::mail_order(60, 42);
//! cfg.months = 6;
//! cfg.converge_month = 4;
//! cfg.states = Some(vec!["MD", "WI", "CA", "TX", "NY", "IL"]);
//! let data = generate_retail(&cfg);
//!
//! // … label items with an aggregate query, build every region's
//! // training set in one CUBE pass …
//! let targets = global_target(&data.db, "profit", AggFunc::Sum).unwrap();
//! let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
//! let result = cube_pass(&data.space, &cube_input);
//! let regions = data.space.all_regions();
//! let source = build_memory_source(&result, &regions, &data.items, &targets);
//!
//! // … and find the bellwether under a budget.
//! let config = BellwetherConfig::new(40.0).with_min_coverage(0.5);
//! let search = basic_search(&source, &data.space, &data.cost, &config, data.items.len()).unwrap();
//! assert!(search.bellwether().is_some());
//! ```

pub use bellwether_core as core;
pub use bellwether_cube as cube;
pub use bellwether_datagen as datagen;
pub use bellwether_linreg as linreg;
pub use bellwether_storage as storage;
pub use bellwether_table as table;

/// Common imports for end-to-end use of the library.
pub mod prelude {
    pub use bellwether_core::{
        basic_search, build_cube_input, build_memory_source, build_naive_cube,
        build_naive_tree, build_optimized_cube, build_rainforest, build_single_scan_cube,
        evaluate_method, global_target, render_cross_tab, sampling_baseline_error,
        select_cell_for_item, BasicSearchResult, BellwetherConfig, BellwetherCube,
        BellwetherTree, CubeConfig, ErrorMeasure, EvalContext, FeatureQuery, ItemCentricEval,
        ItemTable, Method, StarDatabase, TreeConfig,
    };
    pub use bellwether_cube::{
        cube_pass, feasible_regions, Constraints, CostModel, CubeInput, Dimension, Hierarchy,
        ProductCost, RegionId, RegionSpace, UniformCellCost,
    };
    pub use bellwether_datagen::{
        build_scale_workload, generate_retail, generate_simulation, RetailConfig, ScaleConfig,
        SimulationConfig,
    };
    pub use bellwether_linreg::{ErrorEstimate, LinearModel, RegSuffStats, RegressionData};
    pub use bellwether_storage::{DiskSource, MemorySource, RegionBlock, TrainingSource};
    pub use bellwether_table::ops::{AggExpr, AggFunc};
    pub use bellwether_table::{Column, DataType, Predicate, Schema, Table, Value};
}
